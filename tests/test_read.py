"""Unit tests for aligned read records and mark-duplicates keys."""

import numpy as np
import pytest

from repro.genomics.cigar import Cigar
from repro.genomics.read import (
    FLAG_DUPLICATE,
    FLAG_PAIRED,
    FLAG_REVERSE,
    AlignedRead,
    pair_key,
)


def make_read(pos=100, cigar="5M", seq=None, qual=None, flags=0):
    cig = Cigar.parse(cigar)
    n = cig.read_length()
    return AlignedRead(
        name="r1",
        chrom=1,
        pos=pos,
        cigar=cig,
        seq=seq if seq is not None else np.zeros(n, dtype=np.uint8),
        qual=qual if qual is not None else np.full(n, 30, dtype=np.uint8),
        flags=flags,
    )


def test_end_pos():
    read = make_read(pos=100, cigar="5M")
    assert read.end_pos == 104


def test_end_pos_with_deletion():
    read = make_read(pos=100, cigar="3M2D2M")
    assert read.end_pos == 106


def test_seq_qual_length_mismatch_rejected():
    with pytest.raises(ValueError):
        make_read(cigar="5M", seq=np.zeros(5, dtype=np.uint8),
                  qual=np.zeros(4, dtype=np.uint8))


def test_cigar_seq_mismatch_rejected():
    with pytest.raises(ValueError):
        make_read(cigar="6M", seq=np.zeros(5, dtype=np.uint8),
                  qual=np.zeros(5, dtype=np.uint8))


def test_flags_properties():
    read = make_read(flags=FLAG_REVERSE | FLAG_PAIRED)
    assert read.is_reverse
    assert read.is_paired
    assert not read.is_duplicate


def test_set_duplicate():
    read = make_read()
    read.set_duplicate(True)
    assert read.flags & FLAG_DUPLICATE
    read.set_duplicate(False)
    assert not read.is_duplicate


def test_unclipped_5prime_forward():
    read = make_read(pos=100, cigar="3S5M")
    assert read.unclipped_5prime() == 97


def test_unclipped_5prime_reverse():
    read = make_read(pos=100, cigar="5M2S", flags=FLAG_REVERSE)
    assert read.unclipped_5prime() == 106


def test_quality_sum():
    read = make_read(cigar="4M", qual=np.array([10, 20, 30, 40], dtype=np.uint8))
    assert read.quality_sum() == 100


def test_quality_sum_no_overflow():
    # 1000 bases of quality 255 would overflow uint8 accumulation.
    read = make_read(cigar="1000M",
                     seq=np.zeros(1000, dtype=np.uint8),
                     qual=np.full(1000, 41, dtype=np.uint8))
    assert read.quality_sum() == 41_000


def test_pair_key_single():
    read = make_read(pos=100, cigar="3S5M")
    assert pair_key(read) == (1, 97, False)


def test_pair_key_is_order_independent():
    first = make_read(pos=100, cigar="5M")
    second = make_read(pos=300, cigar="5M", flags=FLAG_REVERSE)
    assert pair_key(first, second) == pair_key(second, first)


def test_pair_key_distinguishes_strand():
    fwd = make_read(pos=100, cigar="5M")
    rev = make_read(pos=96, cigar="5M", flags=FLAG_REVERSE)
    # rev's unclipped 5' end (96+4=100) equals fwd's start, strands differ.
    assert rev.unclipped_5prime() == fwd.unclipped_5prime() == 100
    assert pair_key(fwd) != pair_key(rev)
