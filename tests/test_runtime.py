"""Tests for the host runtime API (Section III-E)."""

import pytest

from repro.runtime import DeviceConfig, GenesisRuntime
from repro.runtime.device import PCIE3_BANDWIDTH


def make_runtime(**config):
    runtime = GenesisRuntime(DeviceConfig(**config))
    # A kernel that sums its "qual" column and takes 1000 cycles.
    runtime.register_pipeline(
        0, lambda inputs: ({"sums": [sum(inputs["QUAL"])]}, 1000)
    )
    return runtime


def test_configure_mem_charges_transfer_time():
    runtime = make_runtime()
    runtime.configure_mem([1] * 100, 1, 100, "QUAL", 0)
    expected = 100 / PCIE3_BANDWIDTH + runtime.device.config.transfer_setup_seconds
    assert runtime.elapsed_seconds == pytest.approx(expected)
    assert runtime.device.transfers[0].direction == "h2d"


def test_output_columns_transfer_on_flush_only():
    runtime = make_runtime()
    runtime.configure_mem([1, 2, 3], 1, 3, "QUAL", 0)
    runtime.configure_mem(None, 4, 1, "SUMS", 0, is_output=True)
    before = len(runtime.device.transfers)
    runtime.run_genesis(0)
    assert len(runtime.device.transfers) == before
    results = runtime.genesis_flush(0)
    assert results == {"sums": [6]}
    assert runtime.device.transfers[-1].direction == "d2h"


def test_check_genesis_models_concurrency():
    """The non-blocking API: immediately after run_genesis the pipeline is
    still 'running'; after enough host compute it has finished."""
    runtime = make_runtime()
    runtime.configure_mem([1], 1, 1, "QUAL", 0)
    runtime.run_genesis(0)
    assert not runtime.check_genesis(0)  # 1000 cycles not yet elapsed
    runtime.host_compute(1000 / runtime.device.config.clock_hz)
    assert runtime.check_genesis(0)


def test_wait_genesis_advances_clock():
    runtime = make_runtime()
    runtime.configure_mem([1], 1, 1, "QUAL", 0)
    start = runtime.elapsed_seconds
    runtime.run_genesis(0)
    runtime.wait_genesis(0)
    assert runtime.elapsed_seconds >= start + 1000 / runtime.device.config.clock_hz


def test_overlap_saves_time_vs_serial():
    """Host work issued between run and wait overlaps the accelerator."""
    serial = make_runtime()
    serial.configure_mem([1], 1, 1, "QUAL", 0)
    serial.run_genesis(0)
    serial.wait_genesis(0)
    serial.host_compute(2e-6)

    overlapped = make_runtime()
    overlapped.configure_mem([1], 1, 1, "QUAL", 0)
    overlapped.run_genesis(0)
    overlapped.host_compute(2e-6)  # overlaps the 4 us accelerator run
    overlapped.wait_genesis(0)
    assert overlapped.elapsed_seconds < serial.elapsed_seconds


def test_check_before_launch_false():
    runtime = make_runtime()
    assert not runtime.check_genesis(0)


def test_wait_before_launch_raises():
    runtime = make_runtime()
    with pytest.raises(RuntimeError):
        runtime.wait_genesis(0)


def test_unknown_pipeline_rejected():
    runtime = make_runtime()
    with pytest.raises(KeyError):
        runtime.run_genesis(99)


def test_duplicate_pipeline_rejected():
    runtime = make_runtime()
    with pytest.raises(ValueError):
        runtime.register_pipeline(0, lambda inputs: ({}, 0))


def test_device_memory_exhaustion():
    runtime = GenesisRuntime(DeviceConfig(fpga_memory_bytes=100))
    runtime.register_pipeline(0, lambda inputs: ({}, 0))
    with pytest.raises(MemoryError):
        runtime.configure_mem([0] * 101, 1, 101, "BIG", 0)


def test_pcie4_config_is_faster():
    slow = make_runtime()
    fast = make_runtime(pcie_bandwidth=32e9)
    slow.configure_mem([0] * 1_000_000, 1, 1_000_000, "QUAL", 0)
    fast.configure_mem([0] * 1_000_000, 1, 1_000_000, "QUAL", 0)
    assert fast.elapsed_seconds < slow.elapsed_seconds


# -- device pools (multi-device sharding, DESIGN.md §3.7) ----------------------------


def test_device_pool_cards_are_independent():
    from repro.runtime import DevicePool

    pool = DevicePool(3)
    assert len(pool) == 3
    assert len({id(card.timeline) for card in pool}) == 3
    assert len({id(reg) for reg in pool.registries}) == 3
    pool.device(0).transfer(1_000_000, "h2d")
    pool.device(0).launch(0, 10_000)
    pool.device(0).wait(0)
    assert pool.busy_seconds()[0] > 0
    assert pool.busy_seconds()[1] == pool.busy_seconds()[2] == 0.0
    assert pool.transfer_seconds()[0] > 0


def test_device_pool_least_loaded_and_utilization():
    from repro.runtime import DevicePool

    pool = DevicePool(2)
    assert pool.least_loaded() == 0  # tie breaks on the lowest index
    pool.device(0).transfer(1_000_000, "h2d")
    assert pool.least_loaded() == 1
    pool.device(0).launch(0, 50_000)
    pool.device(0).wait(0)
    pool.device(1).launch(0, 25_000)
    pool.device(1).wait(0)
    utilization = pool.utilization()
    assert utilization[0] == pytest.approx(1.0)
    assert 0.0 < utilization[1] < 1.0


def test_device_pool_rejects_bad_arguments():
    from repro.faults import FaultInjector, FaultPlan
    from repro.runtime import DevicePool

    with pytest.raises(ValueError, match="at least one device"):
        DevicePool(0)
    with pytest.raises(ValueError, match="one fault injector per device"):
        DevicePool(2, fault_injectors=[FaultInjector(FaultPlan(seed=0, specs=()))])


def test_pool_runtimes_wire_each_card():
    from repro.runtime import DevicePool, pool_runtimes

    pool = DevicePool(2)
    runtimes = pool_runtimes(pool)
    assert len(runtimes) == 2
    for index, runtime in enumerate(runtimes):
        assert runtime.device is pool.device(index)
        assert runtime.registry is pool.device(index).registry


def test_runtime_rejects_device_plus_construction_params():
    from repro.runtime import DevicePool

    pool = DevicePool(1)
    with pytest.raises(ValueError, match="not both"):
        GenesisRuntime(DeviceConfig(), device=pool.device(0))
