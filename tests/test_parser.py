"""Unit tests for the extended-SQL parser."""

import pytest

from repro.sql.ast_nodes import (
    BinOp,
    ColumnRef,
    CreateTable,
    Declare,
    ExecModule,
    ForLoop,
    FuncCall,
    InsertInto,
    Literal,
    PosExplode,
    ReadExplode,
    Select,
    SetVar,
    Star,
    SubQuery,
    TableRef,
    VarRef,
)
from repro.sql.parser import ParseError, parse, parse_query


def test_simple_select():
    query = parse_query("SELECT POS, SEQ FROM READS")
    assert isinstance(query, Select)
    assert [item.expr.column for item in query.items] == ["POS", "SEQ"]
    assert query.source == TableRef("READS")


def test_select_star():
    query = parse_query("SELECT * FROM T")
    assert isinstance(query.items[0].expr, Star)


def test_select_alias():
    query = parse_query("SELECT REFPOS AS POS FROM REF")
    assert query.items[0].alias == "POS"


def test_partition_clause():
    query = parse_query("SELECT * FROM READS PARTITION (@P)")
    assert query.source.partition == VarRef("P")


def test_where_clause():
    query = parse_query("SELECT * FROM T WHERE A > 3 AND B == C")
    assert isinstance(query.where, BinOp)
    assert query.where.op == "AND"


def test_group_by():
    query = parse_query("SELECT G, SUM(V) FROM T GROUP BY G")
    assert query.group_by == (ColumnRef("G"),)
    assert isinstance(query.items[1].expr, FuncCall)


def test_limit_single():
    query = parse_query("SELECT * FROM T LIMIT 10")
    assert query.limit == (Literal(0), Literal(10))


def test_limit_offset_count():
    query = parse_query("SELECT * FROM T LIMIT 5, 10")
    assert query.limit == (Literal(5), Literal(10))


def test_inner_join():
    query = parse_query(
        "SELECT * FROM A INNER JOIN B ON A.K = B.K"
    )
    assert query.join.kind == "inner"
    assert query.join.left_key == ColumnRef("K", table="A")
    assert query.join.right_key == ColumnRef("K", table="B")


def test_left_and_outer_join():
    assert parse_query("SELECT * FROM A LEFT JOIN B ON A.K = B.K").join.kind == "left"
    assert parse_query("SELECT * FROM A OUTER JOIN B ON A.K = B.K").join.kind == "outer"


def test_bare_join_is_inner():
    assert parse_query("SELECT * FROM A JOIN B ON A.K = B.K").join.kind == "inner"


def test_join_requires_equality():
    with pytest.raises(ParseError):
        parse_query("SELECT * FROM A JOIN B ON A.K < B.K")


def test_subquery_source():
    query = parse_query("SELECT * FROM (SELECT * FROM T LIMIT 3)")
    assert isinstance(query.source, SubQuery)


def test_pos_explode():
    query = parse_query("PosExplode (R.SEQ, R.POS) FROM R")
    assert isinstance(query, PosExplode)
    assert query.array == ColumnRef("SEQ", table="R")


def test_read_explode():
    query = parse_query("ReadExplode (S.POS, S.CIGAR, S.SEQ) FROM S")
    assert isinstance(query, ReadExplode)
    assert len(query.args) == 3


def test_create_table():
    script = parse("CREATE TABLE T AS SELECT * FROM U")
    statement = script.statements[0]
    assert isinstance(statement, CreateTable)
    assert statement.name == "T"
    assert not statement.temp


def test_create_temp_table():
    script = parse("CREATE TABLE #T AS SELECT * FROM U")
    assert script.statements[0].temp


def test_insert_into():
    script = parse("INSERT INTO Output SELECT COUNT(*) FROM T")
    assert isinstance(script.statements[0], InsertInto)


def test_declare_and_set():
    script = parse("DECLARE @x int; SET @x = 3 + 4")
    assert isinstance(script.statements[0], Declare)
    assert isinstance(script.statements[1], SetVar)


def test_for_loop():
    script = parse(
        "FOR Row IN T: SET @x = Row.A; INSERT INTO O SELECT COUNT(*) FROM U; END LOOP;"
    )
    loop = script.statements[0]
    assert isinstance(loop, ForLoop)
    assert loop.row_var == "Row"
    assert loop.table == "T"
    assert len(loop.body) == 2


def test_exec_module():
    script = parse("EXEC MDGen InputStream1 = @a InputStream2 = @b")
    statement = script.statements[0]
    assert isinstance(statement, ExecModule)
    assert statement.module == "MDGen"
    assert [name for name, _ in statement.bindings] == [
        "InputStream1", "InputStream2",
    ]


def test_operator_precedence():
    query = parse_query("SELECT * FROM T WHERE A + B * 2 == C")
    condition = query.where
    assert condition.op == "=="
    assert condition.left.op == "+"
    assert condition.left.right.op == "*"


def test_parentheses_override_precedence():
    query = parse_query("SELECT * FROM T WHERE (A + B) * 2 == C")
    assert query.where.left.op == "*"


def test_equals_normalized_to_double():
    query = parse_query("SELECT * FROM T WHERE A = 1")
    assert query.where.op == "=="


def test_parse_error_on_garbage():
    with pytest.raises(ParseError):
        parse("FLY ME TO THE MOON")


def test_parse_error_missing_from():
    with pytest.raises(ParseError):
        parse_query("SELECT X")


def test_figure4_script_parses():
    from repro.sql.queries import FIGURE4_QUERY

    script = parse(FIGURE4_QUERY)
    types = [type(s).__name__ for s in script.statements]
    assert types[:3] == ["CreateTable", "CreateTable", "CreateTable"]
    assert "ForLoop" in types
