"""Public API surface checks: everything advertised imports and works."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.accel",
    "repro.compiler",
    "repro.eval",
    "repro.fmindex",
    "repro.gatk",
    "repro.genomics",
    "repro.hw",
    "repro.hw.modules",
    "repro.perf",
    "repro.runtime",
    "repro.sql",
    "repro.tables",
    "repro.variants",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    module = importlib.import_module(name)
    assert module is not None


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    exported = getattr(module, "__all__", [])
    for symbol in exported:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_sorted_unique(name):
    module = importlib.import_module(name)
    exported = list(getattr(module, "__all__", []))
    assert len(exported) == len(set(exported)), f"{name} has duplicate exports"


def test_version():
    import repro

    assert repro.__version__ == "1.0.0"


def test_public_docstrings():
    """Every public package and exported class/function carries a
    docstring (deliverable (e): doc comments on every public item)."""
    import inspect

    missing = []
    for name in PACKAGES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
        for symbol in getattr(module, "__all__", []):
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (getattr(obj, "__doc__", "") or "").strip():
                    missing.append(f"{name}.{symbol}")
    assert not missing, f"undocumented public items: {missing}"


def test_quickstart_snippet_from_readme():
    """The README quickstart must actually run."""
    from repro import make_workload, run_metadata_update
    from repro.gatk import compute_read_metadata
    from repro.tables import table_to_reads

    wl = make_workload(n_reads=30, read_length=50, chromosomes=(21,), seed=2)
    pid, partition = next(
        (p, t) for p, t in wl.partitions if t.num_rows > 0
    )
    result = run_metadata_update(partition, wl.reference.lookup(pid))
    expected = [
        compute_read_metadata(r, wl.genome) for r in table_to_reads(partition)
    ]
    assert result.md == [m.md for m in expected]
