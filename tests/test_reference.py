"""Unit tests for the reference genome substrate."""

import numpy as np
import pytest

from repro.genomics.reference import (
    CHROMOSOMES,
    GRCH38_CHROMOSOME_LENGTHS,
    Chromosome,
    ReferenceGenome,
    chromosome_name,
)


def test_chromosome_names():
    assert chromosome_name(1) == "1"
    assert chromosome_name(22) == "22"
    assert chromosome_name(23) == "X"
    assert chromosome_name(24) == "Y"


def test_grch38_lengths_plausible():
    assert len(CHROMOSOMES) == 24
    assert GRCH38_CHROMOSOME_LENGTHS[1] > GRCH38_CHROMOSOME_LENGTHS[21]
    total = sum(GRCH38_CHROMOSOME_LENGTHS.values())
    assert 3.0e9 < total < 3.2e9  # "roughly 3 billion base pairs" (Section II)


def test_random_genome_deterministic():
    a = ReferenceGenome.random({1: 1000}, seed=5)
    b = ReferenceGenome.random({1: 1000}, seed=5)
    assert np.array_equal(a[1].seq, b[1].seq)
    assert np.array_equal(a[1].is_snp, b[1].is_snp)


def test_random_genome_different_seeds_differ():
    a = ReferenceGenome.random({1: 1000}, seed=5)
    b = ReferenceGenome.random({1: 1000}, seed=6)
    assert not np.array_equal(a[1].seq, b[1].seq)


def test_snp_rate_approximate():
    genome = ReferenceGenome.random({1: 200_000}, snp_rate=0.01, seed=7)
    rate = genome[1].is_snp.mean()
    assert 0.007 < rate < 0.013


def test_snp_rate_validation():
    with pytest.raises(ValueError):
        ReferenceGenome.random({1: 100}, snp_rate=1.5)


def test_fetch_bounds():
    genome = ReferenceGenome.random({1: 100}, seed=8)
    assert len(genome.fetch(1, 10, 20)) == 10
    with pytest.raises(IndexError):
        genome.fetch(1, 90, 101)
    with pytest.raises(IndexError):
        genome.fetch(1, -1, 5)
    with pytest.raises(IndexError):
        genome.fetch(1, 20, 10)


def test_fetch_snp_matches_bitmap():
    genome = ReferenceGenome.random({1: 500}, snp_rate=0.1, seed=9)
    window = genome.fetch_snp(1, 100, 200)
    assert np.array_equal(window, genome[1].is_snp[100:200])


def test_grch38_like_preserves_proportions():
    # Scale large enough that the 1 kbp minimum-length clamp never bites.
    genome = ReferenceGenome.grch38_like(scale=1e-4, seed=10)
    ratio = genome.length(1) / genome.length(21)
    true_ratio = GRCH38_CHROMOSOME_LENGTHS[1] / GRCH38_CHROMOSOME_LENGTHS[21]
    assert abs(ratio - true_ratio) / true_ratio < 0.01


def test_total_length():
    genome = ReferenceGenome.random({1: 100, 2: 250}, seed=11)
    assert genome.total_length() == 350
    assert genome.chromosomes == [1, 2]
    assert 1 in genome and 3 not in genome


def test_duplicate_chromosome_rejected():
    chrom = Chromosome(1, np.zeros(10, dtype=np.uint8), np.zeros(10, dtype=bool))
    with pytest.raises(ValueError):
        ReferenceGenome([chrom, chrom])


def test_empty_genome_rejected():
    with pytest.raises(ValueError):
        ReferenceGenome([])


def test_chromosome_seq_snp_length_mismatch():
    with pytest.raises(ValueError):
        Chromosome(1, np.zeros(10, dtype=np.uint8), np.zeros(9, dtype=bool))
