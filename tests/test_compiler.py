"""Tests for the plan-to-hardware mapping (Section III-D)."""


from repro.compiler import (
    blueprint_summary,
    census_mismatches,
    figure7_blueprint,
    plan_to_blueprint,
)
from repro.hw.engine import Engine
from repro.hw.memory import MemorySystem
from repro.hw.spm import Scratchpad
from repro.sql.parser import parse_query
from repro.sql.plan import build_plan


def test_figure7_blueprint_module_set():
    blueprint = figure7_blueprint()
    census = blueprint.census()
    # The Figure 7 structure: readers, ReadToBases, the SPM pair, the
    # Joiner, the Reducer, and a writer.
    assert census["ReadToBases"] == 1
    assert census["Joiner"] == 1
    assert census["Reducer"] == 1
    assert census["SpmUpdater"] == 1
    assert census["SpmReader"] == 1
    assert census["MemoryReader"] >= 4
    assert census["MemoryWriter"] == 1
    assert blueprint.spm_tables == ["RelevantReference"]


def test_blueprint_consistent_with_built_pipeline():
    """The derived blueprint must be satisfiable by the hand-built
    Figure 7 pipeline (plus its SPM load phase)."""
    from repro.accel.example_query import build_example_pipeline

    engine = Engine(MemorySystem())
    pipe = build_example_pipeline(engine, "x", Scratchpad("s", 8), 0)
    census = pipe.module_census()
    # The load phase (one reader + one updater) runs in a separate engine
    # in the driver; account for it as the blueprint does.
    census["MemoryReader"] = census.get("MemoryReader", 0) + 1
    census["SpmUpdater"] = census.get("SpmUpdater", 0) + 1

    class FakePipe:
        def module_census(self_inner):
            return census

    problems = census_mismatches(figure7_blueprint(), FakePipe())
    assert problems == [], problems


def test_every_scan_gets_a_reader():
    plan = build_plan(parse_query("SELECT * FROM A INNER JOIN B ON A.K = B.K"))
    blueprint = plan_to_blueprint(plan)
    assert blueprint.census()["MemoryReader"] == 2
    assert blueprint.census()["Joiner"] == 1


def test_spm_hint_changes_lowering():
    plan = build_plan(parse_query("SELECT * FROM A INNER JOIN B ON A.K = B.K"))
    blueprint = plan_to_blueprint(plan, spm_tables=frozenset({"B"}))
    census = blueprint.census()
    assert census["SpmUpdater"] == 1
    assert census["SpmReader"] == 1


def test_filter_and_aggregate_lowering():
    plan = build_plan(parse_query("SELECT SUM(V) FROM T WHERE V > 0"))
    census = plan_to_blueprint(plan).census()
    assert census["Filter"] == 1
    assert census["Reducer"] == 1


def test_group_by_lowering_uses_spm():
    plan = build_plan(parse_query("SELECT G, SUM(V) FROM T GROUP BY G"))
    census = plan_to_blueprint(plan).census()
    assert census["SpmUpdater"] == 1
    assert census["SpmReader"] == 1


def test_edges_mirror_plan_shape():
    plan = build_plan(parse_query("SELECT SUM(V) FROM T WHERE V > 0"))
    blueprint = plan_to_blueprint(plan)
    # Scan -> Filter -> Aggregate: two edges.
    assert len(blueprint.edges) == 2


def test_summary_shape():
    summary = blueprint_summary(figure7_blueprint())
    assert set(summary) == {"modules", "queues", "spm_tables"}
