"""Tests for QC metrics (software + the Genesis reduction pipeline)."""

import pytest

from repro.gatk.metrics import (
    alignment_summary,
    insert_size_metrics,
    insert_sizes,
    run_metrics_pipeline,
)
from repro.genomics import ReadSimulator, SimulatorConfig


def test_alignment_summary(small_reads):
    summary = alignment_summary(small_reads)
    assert summary.total_reads == len(small_reads)
    assert summary.total_bases == sum(len(r.seq) for r in small_reads)
    assert summary.mean_read_length == pytest.approx(50)
    assert 2 <= summary.mean_quality <= 41
    assert 0 <= summary.reverse_reads <= summary.total_reads


def test_alignment_summary_empty():
    summary = alignment_summary([])
    assert summary.total_reads == 0
    assert summary.duplicate_fraction == 0.0


def test_duplicate_fraction(small_reads):
    from repro.gatk import mark_duplicates

    result = mark_duplicates(list(small_reads))
    summary = alignment_summary(result.sorted_reads)
    assert summary.duplicate_reads == result.num_duplicates
    assert summary.duplicate_fraction == pytest.approx(
        result.num_duplicates / len(small_reads)
    )


def test_insert_sizes_paired(small_genome):
    sim = ReadSimulator(
        small_genome,
        SimulatorConfig(seed=9, read_length=40, mean_fragment_length=200),
    )
    reads = sim.simulate_pairs(25)
    sizes = insert_sizes(reads)
    assert len(sizes) == 25
    metrics = insert_size_metrics(reads)
    assert metrics.pairs == 25
    # Fragment lengths are drawn around the configured mean.
    assert 120 < metrics.mean < 300
    assert metrics.minimum <= metrics.mean <= metrics.maximum


def test_insert_sizes_unpaired(small_reads):
    assert insert_sizes(small_reads) == []
    assert insert_size_metrics(small_reads).pairs == 0


def test_hw_metrics_match_software(small_reads):
    summary = alignment_summary(small_reads)
    hw = run_metrics_pipeline(small_reads)
    assert hw.total_bases == summary.total_bases
    assert hw.quality_total == sum(r.quality_sum() for r in small_reads)
    lengths = [len(r.seq) for r in small_reads]
    assert hw.min_length == min(lengths)
    assert hw.max_length == max(lengths)


def test_hw_metrics_single_pass(small_reads):
    total = sum(len(r.seq) for r in small_reads)
    hw = run_metrics_pipeline(small_reads)
    # All four reductions share one streaming pass: ~1 cycle/base.
    assert hw.stats.cycles < total * 1.5 + 100
