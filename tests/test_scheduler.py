"""Tests for the host partition scheduler (repro.accel.scheduler).

The oracle pattern follows PR 1's event-vs-dense differential tests:
``workers=N`` runs must be bit-identical — per-partition outputs AND
simulated cycle accounting — to the ``workers=1`` serial schedule, and
the scheduler's per-partition outputs must match the stand-alone
per-partition drivers.
"""

import numpy as np
import pytest

from repro.accel.markdup import run_quality_sums
from repro.accel.metadata import run_metadata_update
from repro.accel.scheduler import (
    BqsrWaveDriver,
    MarkdupWaveDriver,
    MetadataWaveDriver,
    SpmImageCache,
    pack_waves,
    run_partitioned,
)
from repro.eval.workloads import make_workload
from repro.tables.partition import PartitionId

BQSR_FIELDS = ("total_cycle", "total_context", "error_cycle", "error_context")


@pytest.fixture(scope="module")
def sched_workload():
    """Enough partitions for multi-wave, multi-worker schedules."""
    return make_workload(
        n_reads=120,
        read_length=60,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=1000,
        seed=105,
    )


def _assert_same_aggregate(a, b):
    """The deterministic half of ParallelRunStats must agree exactly."""
    assert a.waves == b.waves
    assert a.per_wave_cycles == b.per_wave_cycles
    assert a.total_cycles == b.total_cycles
    assert a.spm_load_cycles == b.spm_load_cycles
    assert a.cycles_including_load == b.cycles_including_load
    assert a.total_flits == b.total_flits


# -- differential: workers=N vs the serial schedule ---------------------------------


def test_metadata_workers_bit_identical(sched_workload):
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    serial_res, serial_stats = run_partitioned(
        driver, sched_workload.partitions, 2, workers=1
    )
    parallel_res, parallel_stats = run_partitioned(
        driver, sched_workload.partitions, 2, workers=4
    )
    assert serial_stats.waves > 1, "need a multi-wave schedule to compare"
    _assert_same_aggregate(serial_stats, parallel_stats)
    assert set(serial_res) == set(parallel_res)
    for pid in serial_res:
        assert parallel_res[pid].nm == serial_res[pid].nm, str(pid)
        assert parallel_res[pid].md == serial_res[pid].md, str(pid)
        assert parallel_res[pid].uq == serial_res[pid].uq, str(pid)


def test_markdup_workers_bit_identical(sched_workload):
    driver = MarkdupWaveDriver()
    serial_res, serial_stats = run_partitioned(
        driver, sched_workload.partitions, 1, workers=1
    )
    parallel_res, parallel_stats = run_partitioned(
        driver, sched_workload.partitions, 1, workers=4
    )
    _assert_same_aggregate(serial_stats, parallel_stats)
    for pid in serial_res:
        assert parallel_res[pid].quality_sums == serial_res[pid].quality_sums


def test_bqsr_workers_bit_identical(sched_workload):
    driver = BqsrWaveDriver(
        reference=sched_workload.reference,
        read_length=sched_workload.read_length,
    )
    serial_res, serial_stats = run_partitioned(
        driver, sched_workload.group_partitions, 4, workers=1
    )
    parallel_res, parallel_stats = run_partitioned(
        driver, sched_workload.group_partitions, 4, workers=4
    )
    _assert_same_aggregate(serial_stats, parallel_stats)
    for pid in serial_res:
        for field in BQSR_FIELDS:
            assert np.array_equal(
                getattr(parallel_res[pid], field), getattr(serial_res[pid], field)
            ), (str(pid), field)
        assert parallel_res[pid].hazard_stalls == serial_res[pid].hazard_stalls
        serial_drain = serial_res[pid].drain_stats
        parallel_drain = parallel_res[pid].drain_stats
        assert (serial_drain is None) == (parallel_drain is None)
        if serial_drain is not None:
            assert parallel_drain.cycles == serial_drain.cycles


# -- scheduler vs the stand-alone per-partition drivers ------------------------------


def test_metadata_matches_standalone_driver(sched_workload):
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    results, _stats = run_partitioned(driver, sched_workload.partitions, 4)
    for pid, part in sched_workload.partitions:
        if part.num_rows == 0:
            continue
        standalone = run_metadata_update(
            part, sched_workload.reference.lookup(pid)
        )
        assert results[pid].nm == standalone.nm, str(pid)
        assert results[pid].md == standalone.md, str(pid)
        assert results[pid].uq == standalone.uq, str(pid)


def test_markdup_matches_standalone_driver(sched_workload):
    driver = MarkdupWaveDriver()
    results, _stats = run_partitioned(driver, sched_workload.partitions, 4)
    for pid, part in sched_workload.partitions:
        if part.num_rows == 0:
            continue
        standalone = run_quality_sums(part.column("QUAL"))
        assert results[pid].quality_sums == standalone.quality_sums, str(pid)


# -- empty partitions ----------------------------------------------------------------


def test_empty_partitions_get_empty_results(sched_workload):
    empty_pid = PartitionId(20, 999)
    empty_part = sched_workload.table.take([])
    parts = list(sched_workload.partitions) + [(empty_pid, empty_part)]
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    for workers in (1, 2):
        results, stats = run_partitioned(driver, parts, 2, workers=workers)
        assert empty_pid in results
        empty = results[empty_pid]
        assert empty.nm == [] and empty.md == [] and empty.uq == []
        assert empty.run is None
        # the empty partition never consumed a pipeline slot
        assert stats.waves == (len(parts) - 1 + 1) // 2


def test_empty_partition_never_hits_reference():
    """Empty partitions must not trigger a reference lookup (their pid
    may have no REF row at all)."""
    workload = make_workload(
        n_reads=20, read_length=40, chromosomes=(21,),
        genome_scale=1.2e-6, psize=2500, seed=9,
    )
    bogus = PartitionId(99, 12345)  # no REF partition exists for this
    parts = list(workload.partitions) + [(bogus, workload.table.take([]))]
    driver = MetadataWaveDriver(reference=workload.reference)
    results, _stats = run_partitioned(driver, parts, 2)
    assert results[bogus].nm == []


# -- SPM image cache -----------------------------------------------------------------


def test_spm_cache_replay_bit_identical(sched_workload):
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    cache = SpmImageCache()
    cold_res, cold_stats = run_partitioned(
        driver, sched_workload.partitions, 2, spm_cache=cache
    )
    assert cold_stats.spm_cache_hits == 0
    assert cold_stats.spm_cache_misses > 0
    warm_res, warm_stats = run_partitioned(
        driver, sched_workload.partitions, 2, spm_cache=cache
    )
    # every re-used partition hits; nothing is re-simulated
    assert warm_stats.spm_cache_misses == 0
    assert warm_stats.spm_cache_hits == cold_stats.spm_cache_misses
    assert warm_stats.spm_cycles_saved > 0
    # and the replayed images leave results and cycles bit-identical
    _assert_same_aggregate(cold_stats, warm_stats)
    for pid in cold_res:
        assert warm_res[pid].nm == cold_res[pid].nm
        assert warm_res[pid].md == cold_res[pid].md
        assert warm_res[pid].uq == cold_res[pid].uq


def test_spm_cache_seeds_worker_processes(sched_workload):
    """A warm parent cache must reach pool workers (no re-simulation in
    the fanned-out run either)."""
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    cache = SpmImageCache()
    _cold, cold_stats = run_partitioned(
        driver, sched_workload.partitions, 2, spm_cache=cache
    )
    warm_res, warm_stats = run_partitioned(
        driver, sched_workload.partitions, 2, workers=2, spm_cache=cache
    )
    assert warm_stats.spm_cache_misses == 0
    assert warm_stats.spm_cache_hits == cold_stats.spm_cache_misses
    _assert_same_aggregate(cold_stats, warm_stats)
    for pid in warm_res:
        assert warm_res[pid].nm is not None


def test_spm_cache_shared_across_stages(sched_workload):
    """Metadata then BQSR: the with_snp images differ, but a second
    metadata-style pass (e.g. another stage on the same partitions)
    replays every image."""
    cache = SpmImageCache()
    metadata = MetadataWaveDriver(reference=sched_workload.reference)
    _res, first = run_partitioned(
        metadata, sched_workload.partitions, 4, spm_cache=cache
    )
    bqsr = BqsrWaveDriver(
        reference=sched_workload.reference,
        read_length=sched_workload.read_length,
        drain=False,
    )
    _res2, second = run_partitioned(
        bqsr, sched_workload.group_partitions, 4, spm_cache=cache
    )
    # BQSR's (base, is_snp) images are distinct entries, but read-group
    # slices of one segment share an image within the run.
    assert second.spm_cache_misses <= len(
        {(pid.chrom, pid.segment) for pid, p in sched_workload.group_partitions}
    )
    _res3, third = run_partitioned(
        metadata, sched_workload.partitions, 4, spm_cache=cache
    )
    assert third.spm_cache_misses == 0
    assert third.spm_cache_hits == first.spm_cache_misses


def test_bqsr_read_group_slices_share_images(sched_workload):
    segments = {}
    for pid, part in sched_workload.group_partitions:
        if part.num_rows:
            segments.setdefault((pid.chrom, pid.segment), 0)
            segments[(pid.chrom, pid.segment)] += 1
    if max(segments.values(), default=0) < 2:
        pytest.skip("no segment with multiple read groups")
    driver = BqsrWaveDriver(
        reference=sched_workload.reference,
        read_length=sched_workload.read_length,
        drain=False,
    )
    _res, stats = run_partitioned(driver, sched_workload.group_partitions, 8)
    assert stats.spm_cache_misses == len(segments)
    assert stats.spm_cache_hits == sum(segments.values()) - len(segments)


def test_spm_cache_eviction():
    workload = make_workload(
        n_reads=40, read_length=40, chromosomes=(20, 21),
        genome_scale=1.2e-6, psize=2500, seed=11,
    )
    cache = SpmImageCache(max_images=1)
    driver = MetadataWaveDriver(reference=workload.reference)
    run_partitioned(driver, workload.partitions, 1, spm_cache=cache)
    assert len(cache) == 1


def test_spm_cache_absorb_merges_images_and_counters(sched_workload):
    """absorb() is the cross-device merge: disjoint image sets union,
    and the per-pool hit/miss/cycles-saved history accumulates."""
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    parts = list(sched_workload.partitions)
    half = len(parts) // 2
    assert half >= 1
    cache_a, cache_b = SpmImageCache(), SpmImageCache()
    run_partitioned(driver, parts[:half], 2, spm_cache=cache_a)
    run_partitioned(driver, parts[half:], 2, spm_cache=cache_b)
    keys_a, keys_b = set(cache_a.images()), set(cache_b.images())
    misses_a, misses_b = cache_a.misses, cache_b.misses
    cache_a.absorb(cache_b)
    assert set(cache_a.images()) == keys_a | keys_b
    assert cache_a.misses == misses_a + misses_b
    # the absorbed pool replays both halves without re-simulating
    _res, stats = run_partitioned(driver, parts, 2, spm_cache=cache_a)
    assert stats.spm_cache_misses == 0


def test_spm_cache_absorb_overlapping_keys_idempotent(sched_workload):
    """Two pools that cached the same partitions merge first-wins: the
    image set does not grow, and the surviving entries are the target's
    own (no churn on identical keys)."""
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    cache_a, cache_b = SpmImageCache(), SpmImageCache()
    run_partitioned(driver, sched_workload.partitions, 2, spm_cache=cache_a)
    run_partitioned(driver, sched_workload.partitions, 2, spm_cache=cache_b)
    before = cache_a.images()
    cache_a.absorb(cache_b)
    after = cache_a.images()
    assert set(after) == set(before)
    for key, image in before.items():
        assert after[key] is image  # first writer won
    # a second absorb of the same pool adds no images either
    cache_a.absorb(cache_b)
    assert set(cache_a.images()) == set(before)


def test_spm_cache_absorb_counters_survive_merge(sched_workload):
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    cache_a, cache_b = SpmImageCache(), SpmImageCache()
    run_partitioned(driver, sched_workload.partitions, 2, spm_cache=cache_a)
    run_partitioned(driver, sched_workload.partitions, 2, spm_cache=cache_b)
    run_partitioned(driver, sched_workload.partitions, 2, spm_cache=cache_b)
    assert cache_b.hits > 0 and cache_b.cycles_saved > 0
    expected = (
        cache_a.hits + cache_b.hits,
        cache_a.misses + cache_b.misses,
        cache_a.cycles_saved + cache_b.cycles_saved,
    )
    cache_a.absorb(cache_b)
    assert (cache_a.hits, cache_a.misses, cache_a.cycles_saved) == expected


# -- wave packing --------------------------------------------------------------------


def test_pack_waves_largest_first(sched_workload):
    parts = list(sched_workload.partitions)
    empty, waves = pack_waves(parts, 2)
    sizes = [part.num_rows for wave in waves for _pid, part in wave]
    assert sizes == sorted(sizes, reverse=True)
    packed = {pid for wave in waves for pid, _part in wave}
    assert packed | set(empty) == {pid for pid, _part in parts}
    # deterministic: same input, same packing
    assert pack_waves(parts, 2)[1] == waves


def test_pack_waves_validates_pipelines(sched_workload):
    with pytest.raises(ValueError):
        pack_waves(list(sched_workload.partitions), 0)


def test_run_partitioned_validates_workers(sched_workload):
    driver = MarkdupWaveDriver()
    with pytest.raises(ValueError):
        run_partitioned(driver, sched_workload.partitions, 1, workers=0)


def test_per_worker_breakdown_accounts_every_wave(sched_workload):
    driver = MetadataWaveDriver(reference=sched_workload.reference)
    _res, stats = run_partitioned(
        driver, sched_workload.partitions, 1, workers=2
    )
    assert sum(w.waves for w in stats.per_worker.values()) == stats.waves
    assert sum(w.cycles for w in stats.per_worker.values()) == stats.total_cycles
    assert stats.workers == 2
