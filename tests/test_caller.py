"""Tests for the pileup variant caller."""

import numpy as np
import pytest

from repro.genomics import ReadSimulator, ReferenceGenome, SimulatorConfig
from repro.genomics.cigar import Cigar
from repro.genomics.read import AlignedRead
from repro.variants import (
    CallerConfig,
    build_pileup,
    call_variants,
    genotype_likelihoods,
    inject_true_variants,
)
from repro.variants.caller import PileupColumn


@pytest.fixture(scope="module")
def clean_setup():
    """Reference + donor with injected SNVs + error-free reads."""
    reference = ReferenceGenome.random({1: 15000}, snp_rate=0.0, seed=21)
    donor, truth = inject_true_variants(reference, rate=2e-3, seed=22)
    config = SimulatorConfig(
        seed=23, read_length=80, substitution_rate=0.0, insertion_rate=0.0,
        deletion_rate=0.0, soft_clip_rate=0.0, duplicate_rate=0.0,
    )
    reads = ReadSimulator(donor, config).simulate(2200)
    return reference, donor, truth, reads


def test_pileup_depth_accumulates():
    read = AlignedRead(
        name="r", chrom=1, pos=5, cigar=Cigar.parse("4M"),
        seq=np.zeros(4, dtype=np.uint8), qual=np.full(4, 30, dtype=np.uint8),
    )
    pileup = build_pileup([read, read])
    assert pileup[(1, 6)].depth == 2
    assert (1, 9) not in pileup  # read covers 5..8


def test_pileup_skips_low_quality_and_duplicates():
    read = AlignedRead(
        name="r", chrom=1, pos=0, cigar=Cigar.parse("2M"),
        seq=np.zeros(2, dtype=np.uint8),
        qual=np.array([5, 30], dtype=np.uint8),
    )
    pileup = build_pileup([read], min_base_quality=10)
    assert (1, 0) not in pileup
    assert pileup[(1, 1)].depth == 1
    read.set_duplicate(True)
    assert not build_pileup([read])


def test_genotype_likelihoods_favor_truth():
    hom_alt = PileupColumn(1, 0, bases=[1] * 10, quals=[30] * 10)
    rr, ra, aa = genotype_likelihoods(hom_alt, ref_base=0, alt_base=1)
    assert aa > ra > rr
    het = PileupColumn(1, 0, bases=[0, 1] * 5, quals=[30] * 10)
    rr, ra, aa = genotype_likelihoods(het, ref_base=0, alt_base=1)
    assert ra > rr and ra > aa


def test_caller_finds_injected_variants(clean_setup):
    reference, _donor, truth, reads = clean_setup
    calls = call_variants(reads, reference)
    metrics = calls.concordance(truth.snvs())
    # Error-free reads at decent coverage: high precision, decent recall
    # (recall < 1 only where coverage dips below min_depth).
    assert metrics["precision"] > 0.95
    assert metrics["recall"] > 0.5


def test_caller_quiet_on_matching_sample(clean_setup):
    reference, _donor, _truth, _reads = clean_setup
    config = SimulatorConfig(
        seed=31, read_length=80, substitution_rate=0.0, insertion_rate=0.0,
        deletion_rate=0.0, soft_clip_rate=0.0, duplicate_rate=0.0,
    )
    reads = ReadSimulator(reference, config).simulate(800)
    calls = call_variants(reads, reference)
    assert len(calls) == 0  # no variants in a sample == reference


def test_sequencing_errors_mostly_filtered(clean_setup):
    """With per-base errors ON but no true variants, the genotype model
    should reject nearly all error pileups."""
    reference, _donor, _truth, _reads = clean_setup
    config = SimulatorConfig(
        seed=32, read_length=80, substitution_rate=0.01, insertion_rate=0.0,
        deletion_rate=0.0, soft_clip_rate=0.0, duplicate_rate=0.0,
    )
    reads = ReadSimulator(reference, config).simulate(1200)
    calls = call_variants(reads, reference)
    covered = sum(len(r.seq) for r in reads)
    assert len(calls) < covered * 1e-3


def test_caller_config_validation():
    with pytest.raises(ValueError):
        CallerConfig(min_depth=0)


def test_injected_truth_is_consistent():
    reference = ReferenceGenome.random({1: 5000, 2: 3000}, seed=41)
    donor, truth = inject_true_variants(reference, rate=1e-3, seed=42)
    assert reference.total_length() == donor.total_length()
    for variant in truth:
        ref_seq = reference[variant.chrom].seq
        donor_seq = donor[variant.chrom].seq
        from repro.genomics.sequences import decode_sequence

        assert decode_sequence([ref_seq[variant.pos]]) == variant.ref
        assert decode_sequence([donor_seq[variant.pos]]) == variant.alt
    # Positions outside the truth set are untouched.
    diffs = sum(
        int((reference[c].seq != donor[c].seq).sum())
        for c in reference.chromosomes
    )
    assert diffs == len(truth)
