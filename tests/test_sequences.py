"""Unit tests for base-pair sequence encoding."""

import numpy as np
import pytest

from repro.genomics.sequences import (
    BASES,
    N_CODE,
    complement,
    decode_base,
    decode_sequence,
    encode_base,
    encode_sequence,
    gc_content,
    random_sequence,
    reverse_complement,
)


def test_alphabet_order():
    assert BASES == "ACGT"
    assert [encode_base(b) for b in "ACGT"] == [0, 1, 2, 3]


def test_encode_decode_roundtrip():
    assert decode_sequence(encode_sequence("ACGTACGT")) == "ACGTACGT"


def test_encode_lowercase():
    assert encode_base("a") == 0
    assert decode_sequence(encode_sequence("acgt")) == "ACGT"


def test_n_base():
    assert encode_base("N") == N_CODE
    assert decode_base(N_CODE) == "N"


def test_encode_invalid_base():
    with pytest.raises(ValueError):
        encode_base("Z")


def test_decode_invalid_code():
    with pytest.raises(ValueError):
        decode_base(9)


def test_complement_pairs():
    seq = encode_sequence("ACGTN")
    assert decode_sequence(complement(seq)) == "TGCAN"


def test_reverse_complement():
    seq = encode_sequence("AACGT")
    assert decode_sequence(reverse_complement(seq)) == "ACGTT"


def test_reverse_complement_involution():
    rng = np.random.default_rng(1)
    seq = random_sequence(97, rng)
    assert np.array_equal(reverse_complement(reverse_complement(seq)), seq)


def test_random_sequence_range():
    rng = np.random.default_rng(2)
    seq = random_sequence(1000, rng)
    assert seq.dtype == np.uint8
    assert seq.min() >= 0 and seq.max() <= 3


def test_random_sequence_negative_length():
    rng = np.random.default_rng(3)
    with pytest.raises(ValueError):
        random_sequence(-1, rng)


def test_gc_content_all_gc():
    assert gc_content(encode_sequence("GCGC")) == 1.0


def test_gc_content_none():
    assert gc_content(encode_sequence("ATAT")) == 0.0


def test_gc_content_ignores_n():
    assert gc_content(encode_sequence("GCNN")) == 1.0


def test_gc_content_empty():
    assert gc_content(np.array([], dtype=np.uint8)) == 0.0
