"""Tests for ``repro analyze --critical-path``: the per-job latency
decomposition rebuilt from the serve ledger.

The load-bearing invariant: the decomposed segments of every job sum
EXACTLY to the job's ledger-recorded latency — the walk is a partition
of [arrival, completion], not a sampling, so nothing is lost or double
counted even through retries, fault penalties, and a drain/resume
restart.
"""

import pytest

from repro.eval.workloads import make_workload
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.obs.analyze import (
    CRITICAL_PATH_CATEGORIES,
    critical_path_from_ledger,
)
from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.serve import SERVE_FAULT_SITE, JobService
from repro.serve.trace import ArrivalTrace, trace_jobs


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        n_reads=60, read_length=60, chromosomes=(20,),
        genome_scale=4.5e-5, psize=1000, seed=3,
    )


def _serve_into_ledger(
    tmp_path, workload, drain_at=None, fault_plan=None, jobs=8
):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    trace = ArrivalTrace.generate(
        tenants=3, jobs=jobs, seed=1, stages=("markdup", "metadata"),
        mean_gap_cycles=30_000,
    )
    with run_context(
        RunManifest(workload="serve", config={}, seed=1), ledger
    ):
        service = JobService(
            devices=2, workers=1, fault_plan=fault_plan,
            retry_policy=RetryPolicy(max_retries=3),
        )
        for at_cycles, spec in trace_jobs(trace, workload, n_pipelines=2):
            service.schedule(spec, at_cycles=at_cycles)
        if drain_at is not None:
            service.run(max_dispatches=drain_at)
            checkpoint = service.drain()
            service = JobService.resume(checkpoint)
        summary = service.run_until_idle()
    assert summary.jobs_failed == 0
    return RunLedger(str(tmp_path / "ledger.jsonl")), summary


def _assert_exact(report):
    assert report.jobs
    for job in report.jobs:
        assert set(job.segments) <= set(CRITICAL_PATH_CATEGORIES)
        assert all(cycles >= 0 for cycles in job.segments.values())
        assert sum(job.segments.values()) == job.latency_cycles


class TestExactDecomposition:
    def test_plain_run_sums_exactly(self, tmp_path, workload):
        ledger, summary = _serve_into_ledger(tmp_path, workload)
        report = critical_path_from_ledger(ledger)
        assert len(report.jobs) == summary.jobs_completed
        _assert_exact(report)
        total = report.totals()
        assert total["kernel"] > 0
        assert total["transfer"] > 0

    def test_drain_resume_run_sums_exactly(self, tmp_path, workload):
        ledger, _ = _serve_into_ledger(tmp_path, workload, drain_at=3)
        report = critical_path_from_ledger(ledger)
        _assert_exact(report)
        # the aborted pre-drain wave time is charged to "drain"
        assert report.totals().get("drain", 0) > 0

    def test_faulted_run_sums_exactly(self, tmp_path, workload):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(
                "transfer_error", site=SERVE_FAULT_SITE, count=2, at=(0, 3)
            ),
        ))
        ledger, summary = _serve_into_ledger(
            tmp_path, workload, fault_plan=plan
        )
        assert summary.retries > 0
        report = critical_path_from_ledger(ledger)
        _assert_exact(report)
        assert report.totals().get("fault_penalty", 0) > 0

    def test_faulted_drain_resume_run_sums_exactly(self, tmp_path, workload):
        plan = FaultPlan(seed=5, specs=(
            FaultSpec(
                "transfer_error", site=SERVE_FAULT_SITE, count=2, at=(0, 3)
            ),
        ))
        ledger, _ = _serve_into_ledger(
            tmp_path, workload, drain_at=4, fault_plan=plan
        )
        _assert_exact(critical_path_from_ledger(ledger))


class TestReportShape:
    def test_job_filter(self, tmp_path, workload):
        ledger, _ = _serve_into_ledger(tmp_path, workload)
        report = critical_path_from_ledger(ledger, job_id=0)
        assert [job.job for job in report.jobs] == [0]
        with pytest.raises(ValueError, match="job 999"):
            critical_path_from_ledger(ledger, job_id=999)

    def test_empty_ledger_raises(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "empty.jsonl"))
        with pytest.raises(ValueError, match="serve.job.done"):
            critical_path_from_ledger(ledger)

    def test_render_names_every_job(self, tmp_path, workload):
        ledger, summary = _serve_into_ledger(tmp_path, workload)
        report = critical_path_from_ledger(ledger)
        text = report.render()
        assert "critical-path analysis" in text
        for job in report.jobs:
            assert f"job {job.job}" in text
            assert job.tenant in text

    def test_dominant_segment(self, tmp_path, workload):
        ledger, _ = _serve_into_ledger(tmp_path, workload)
        report = critical_path_from_ledger(ledger)
        for job in report.jobs:
            dominant = job.dominant
            assert job.segments[dominant] == max(job.segments.values())

    def test_old_ledger_without_wave_starts_still_sums(
        self, tmp_path, workload
    ):
        """Pre-v2 ledgers lack start/transfer/penalty cycles on
        serve.wave.done; the analyzer falls back to kernel+load
        attribution and charges the rest to queue_wait — exactly."""
        import json

        ledger, _ = _serve_into_ledger(tmp_path, workload)
        path = tmp_path / "ledger.jsonl"
        stripped = []
        for line in path.read_text().splitlines():
            record = json.loads(line)
            if record.get("event") == "serve.wave.done":
                for key in (
                    "start_cycles", "transfer_cycles", "penalty_cycles"
                ):
                    record.pop(key, None)
            stripped.append(json.dumps(record))
        old = tmp_path / "old.jsonl"
        old.write_text("\n".join(stripped) + "\n")
        report = critical_path_from_ledger(RunLedger(str(old)))
        _assert_exact(report)
        assert report.totals().get("queue_wait", 0) > 0
