"""Unit tests for the memory system model."""

import pytest

from repro.hw.memory import MemoryConfig, MemorySystem


def test_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(channels=0)
    with pytest.raises(ValueError):
        MemoryConfig(latency_cycles=-1)


def test_bandwidth():
    config = MemoryConfig(channels=4, access_bytes=64)
    assert config.bandwidth_bytes_per_cycle() == 256


def test_response_after_latency():
    memory = MemorySystem(MemoryConfig(channels=1, latency_cycles=5))
    responses = []
    port = memory.register_port(lambda n: responses.append(n))
    memory.request(port)
    for cycle in range(5):
        memory.tick(cycle)
        assert not responses
    memory.tick(5)
    assert responses == [1]
    assert memory.is_idle()


def test_one_request_per_channel_per_cycle():
    memory = MemorySystem(MemoryConfig(channels=1, latency_cycles=0))
    served = []
    port = memory.register_port(lambda n: served.append(n))
    memory.request(port, count=10)
    memory.tick(0)
    assert memory.pending_requests(port) == 9


def test_round_robin_fairness():
    memory = MemorySystem(MemoryConfig(channels=1, latency_cycles=0))
    counts = [0, 0]
    port_a = memory.register_port(lambda n: counts.__setitem__(0, counts[0] + n))
    port_b = memory.register_port(lambda n: counts.__setitem__(1, counts[1] + n))
    memory.request(port_a, 50)
    memory.request(port_b, 50)
    for cycle in range(40):
        memory.tick(cycle)
    # With fair round-robin both ports get served equally.
    assert abs(counts[0] - counts[1]) <= 1


def test_ports_spread_across_channels():
    memory = MemorySystem(MemoryConfig(channels=4, latency_cycles=0))
    done = [0] * 8
    ports = [
        memory.register_port(lambda n, i=i: done.__setitem__(i, done[i] + n))
        for i in range(8)
    ]
    for port in ports:
        memory.request(port, 2)
    for cycle in range(30):
        memory.tick(cycle)
    assert all(v == 2 for v in done)


def test_bytes_accounting():
    memory = MemorySystem(MemoryConfig(channels=2, access_bytes=64, latency_cycles=0))
    port = memory.register_port(lambda n: None)
    memory.request(port, 4)
    for cycle in range(10):
        memory.tick(cycle)
    assert memory.bytes_transferred == 4 * 64
    assert memory.requests_served == 4


def test_request_count_validation():
    memory = MemorySystem()
    port = memory.register_port(None)
    with pytest.raises(ValueError):
        memory.request(port, 0)
