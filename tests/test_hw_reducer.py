"""Unit tests for the Reducer module (Figure 6)."""

import pytest

from repro.hw.flit import DEL, Flit, item_flits
from repro.hw.modules import Reducer

from hw_harness import drive, values


def reduce_items(op, items, **kwargs):
    flits = [f for item in items for f in item_flits(item)]
    reducer = Reducer("r", op=op, field="value", **kwargs)
    out, _ = drive(reducer, {"in": flits})
    return values(out["out"])


def test_sum_per_item():
    assert reduce_items("sum", [[1, 2, 3], [10], [4, 4]]) == [6, 10, 8]


def test_count_per_item():
    assert reduce_items("count", [[5, 5], [7, 7, 7]]) == [2, 3]


def test_min_max():
    assert reduce_items("max", [[3, 9, 1]]) == [9]
    assert reduce_items("min", [[3, 9, 1]]) == [1]


def test_empty_item_yields_identity():
    assert reduce_items("sum", [[], [1]]) == [0, 1]
    assert reduce_items("count", [[]]) == [0]
    assert reduce_items("max", [[]]) == [0]


def test_masked_sum():
    flits = [
        Flit({"value": 5, "m": 1}),
        Flit({"value": 100, "m": 0}),
        Flit({"value": 7, "m": 1}, last=True),
    ]
    reducer = Reducer("r", op="sum", field="value", mask_field="m")
    out, _ = drive(reducer, {"in": flits})
    assert values(out["out"]) == [12]


def test_del_sentinel_excluded():
    flits = [Flit({"value": 5}), Flit({"value": DEL}), Flit({"value": 2}, last=True)]
    reducer = Reducer("r", op="sum")
    out, _ = drive(reducer, {"in": flits})
    assert values(out["out"]) == [7]


def test_flits_missing_field_ignored():
    flits = [Flit({"other": 1}), Flit({"value": 3}, last=True)]
    reducer = Reducer("r", op="count")
    out, _ = drive(reducer, {"in": flits})
    assert values(out["out"]) == [1]


def test_stream_granularity():
    flits = [f for item in [[1, 2], [3]] for f in item_flits(item)]
    reducer = Reducer("r", op="sum", per_item=False)
    drive(reducer, {"in": flits})
    assert reducer.stream_result() == 6


def test_invalid_op():
    with pytest.raises(ValueError):
        Reducer("r", op="median")


def test_throughput_one_flit_per_cycle():
    flits = [f for f in item_flits(list(range(100)))]
    reducer = Reducer("r", op="sum")
    out, stats = drive(reducer, {"in": flits})
    # ~1 flit/cycle: 100 inputs should take only a little over 100 cycles.
    assert stats.cycles < 130
