"""Unit tests for the scratchpad and the RMW hazard interlock."""

import pytest

from repro.hw.spm import RmwInterlock, Scratchpad


def test_read_write():
    spm = Scratchpad("s", 16)
    spm.write(3, 42)
    assert spm.read(3) == 42
    assert spm.reads == 1 and spm.writes == 1


def test_bounds_checked():
    spm = Scratchpad("s", 4)
    with pytest.raises(IndexError):
        spm.read(4)
    with pytest.raises(IndexError):
        spm.write(-1, 0)


def test_load_and_dump():
    spm = Scratchpad("s", 5)
    spm.load([1, 2, 3], offset=1)
    assert spm.dump() == [0, 1, 2, 3, 0]


def test_clear():
    spm = Scratchpad("s", 3, fill=7)
    assert spm.dump() == [7, 7, 7]
    spm.clear(0)
    assert spm.dump() == [0, 0, 0]


def test_size_validation():
    with pytest.raises(ValueError):
        Scratchpad("s", 0)


def test_interlock_blocks_same_address_within_three_cycles():
    interlock = RmwInterlock()
    assert interlock.try_enter(0, 5)
    assert not interlock.try_enter(1, 5)
    assert not interlock.try_enter(2, 5)
    assert interlock.try_enter(3, 5)  # pipeline drained
    assert interlock.hazard_stalls == 2


def test_interlock_allows_different_addresses():
    interlock = RmwInterlock()
    assert interlock.try_enter(0, 1)
    assert interlock.try_enter(0, 2)
    assert interlock.try_enter(1, 3)
    assert interlock.hazard_stalls == 0


def test_interlock_busy():
    interlock = RmwInterlock()
    interlock.try_enter(0, 9)
    assert interlock.busy(1)
    assert not interlock.busy(3)
