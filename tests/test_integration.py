"""End-to-end integration: the accelerated preprocessing pipeline over the
runtime API, checked against the pure-software pipeline."""

import numpy as np

from repro.accel.bqsr import merge_partition_results, run_bqsr_partition
from repro.accel.markdup import run_quality_sums
from repro.accel.metadata import run_metadata_update
from repro.gatk.bqsr import build_covariate_tables
from repro.gatk.markdup import mark_duplicates
from repro.gatk.metadata import compute_read_metadata
from repro.runtime import GenesisRuntime
from repro.tables.genomic_tables import reads_to_table, table_to_reads
from repro.tables.partition import partition_reads, partition_reads_by_group


def test_accelerated_preprocessing_equals_software(workload):
    """Run all three accelerated stages the way the paper's system does
    (hardware kernels + host remainders) and compare every artifact with
    the software pipeline."""
    reads = workload.reads

    # Stage 1: mark duplicates — accelerator computes quality sums.
    accel_sums = run_quality_sums([r.qual for r in reads]).quality_sums
    hw_markdup = mark_duplicates(reads, quality_sums=accel_sums)
    sw_markdup = mark_duplicates(reads)
    assert hw_markdup.duplicate_indices == sw_markdup.duplicate_indices

    # Stage 2: metadata update per partition.
    sorted_table = reads_to_table(hw_markdup.sorted_reads)
    for pid, part in partition_reads(sorted_table, workload.psize):
        if part.num_rows == 0:
            continue
        result = run_metadata_update(part, workload.reference.lookup(pid))
        expected = [
            compute_read_metadata(r, workload.genome)
            for r in table_to_reads(part)
        ]
        assert result.nm == [m.nm for m in expected]
        assert result.md == [m.md for m in expected]
        assert result.uq == [m.uq for m in expected]

    # Stage 3: BQSR covariate tables over non-duplicates.
    survivors = [r for r in hw_markdup.sorted_reads if not r.is_duplicate]
    survivor_table = reads_to_table(survivors)
    by_group = {}
    for pid, part in partition_reads_by_group(survivor_table, workload.psize):
        if part.num_rows == 0:
            continue
        result = run_bqsr_partition(
            part, workload.reference.lookup(pid), workload.read_length
        )
        by_group.setdefault(pid.read_group, []).append(result)
    hw_tables = merge_partition_results(by_group, workload.read_length)
    sw_tables = build_covariate_tables(
        survivors, workload.genome, workload.read_length
    )
    for read_group, expected in sw_tables.items():
        got = hw_tables[read_group]
        assert np.array_equal(got.total_cycle, expected.total_cycle)
        assert np.array_equal(got.error_cycle, expected.error_cycle)
        assert np.array_equal(got.total_context, expected.total_context)
        assert np.array_equal(got.error_context, expected.error_context)


def test_runtime_driven_markdup(workload):
    """Drive the mark-duplicates kernel through the Section III-E API."""
    reads = workload.reads
    quals = [r.qual for r in reads]

    def kernel(inputs):
        result = run_quality_sums(inputs["QUAL"])
        return {"sums": result.quality_sums}, result.stats.cycles

    runtime = GenesisRuntime()
    runtime.register_pipeline(0, kernel)
    total_bytes = sum(len(q) for q in quals)
    runtime.configure_mem(quals, 1, total_bytes, "QUAL", 0)
    runtime.configure_mem(None, 4, len(reads), "SUMS", 0, is_output=True)
    runtime.run_genesis(0)
    assert not runtime.check_genesis(0)
    results = runtime.genesis_flush(0)
    assert runtime.check_genesis(0)
    assert results["sums"] == [r.quality_sum() for r in reads]
    # The timeline charged both directions of PCIe traffic plus compute.
    assert runtime.elapsed_seconds > 0
    directions = {t.direction for t in runtime.device.transfers}
    assert directions == {"h2d", "d2h"}
