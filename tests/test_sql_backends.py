"""Differential tests: the vectorized ``fast`` backend against the
row-at-a-time ``reference`` backend.

The reference backend is the semantic oracle; the fast backend must be
bit-identical — same values, dtypes, column order, row order, and
validity masks — on every query shape the dialect supports.  Each
query here runs on both backends over the same catalog and the result
tables are compared column by column, including the Figure 4 script on
every partition of the standard workload.

The sort-merge join edge cases (duplicate keys on both sides, empty
sides, all-NULL key columns) run through one shared parametrized
fixture so every join kind × backend pair sees the same inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sql import (
    Executor,
    SqlError,
    available_backends,
    get_backend,
    run_figure4_query,
    table_from_row_dicts,
)
from repro.tables.schema import Schema
from repro.tables.table import Table


def assert_tables_identical(got: Table, expected: Table) -> None:
    """Bit-identity: schema (names + kinds), values, dtypes, row order,
    and validity masks all equal."""
    assert got.schema.names == expected.schema.names
    assert [spec.kind for spec in got.schema.columns] == [
        spec.kind for spec in expected.schema.columns
    ]
    assert got.num_rows == expected.num_rows
    for name in got.schema.names:
        left, right = got.column(name), expected.column(name)
        if got.schema[name].is_array:
            assert all(
                np.array_equal(a, b) for a, b in zip(left, right)
            ), name
        else:
            left, right = np.asarray(left), np.asarray(right)
            assert left.dtype == right.dtype, name
            assert np.array_equal(left, right), name
        got_mask, expected_mask = got.validity(name), expected.validity(name)
        if got_mask is None or expected_mask is None:
            # An absent mask means all-valid; both must agree on that.
            assert got_mask is None or bool(np.all(got_mask)), name
            assert expected_mask is None or bool(np.all(expected_mask)), name
        else:
            assert np.array_equal(got_mask, expected_mask), name


def _catalog():
    """The shared test catalog: a scalar table and two join sides."""
    t = Table.from_rows(
        Schema.of(A="int64", B="int64", G="int64"),
        [
            {"A": 1, "B": 7, "G": 0},
            {"A": 2, "B": 3, "G": 1},
            {"A": 3, "B": 9, "G": 0},
            {"A": 4, "B": 3, "G": 1},
            {"A": 5, "B": 0, "G": 2},
            {"A": 6, "B": 5, "G": 0},
        ],
    )
    left = Table.from_rows(
        Schema.of(K="int64", V="int64"),
        [
            {"K": 1, "V": 10},
            {"K": 2, "V": 20},
            {"K": 1, "V": 30},
            {"K": 4, "V": 40},
        ],
    )
    right = Table.from_rows(
        Schema.of(K="int64", W="int64"),
        [
            {"K": 1, "W": 100},
            {"K": 3, "W": 300},
            {"K": 1, "W": 101},
        ],
    )
    return {"T": t, "L": left, "R": right}


def _run(query: str, backend: str) -> Table:
    executor = Executor(backend=backend)
    for name, table in _catalog().items():
        executor.register_table(name, table)
    return executor.query(query)


#: Every query shape the dialect supports, over the shared catalog.
DIFFERENTIAL_QUERIES = [
    "SELECT * FROM T",
    "SELECT A, B + 1 AS B1, B * A AS P FROM T",
    "SELECT A, B / 2 AS H, B - A AS D FROM T",
    "SELECT A FROM T WHERE B > 3 AND A != 3",
    "SELECT A FROM T WHERE B == 3 OR NOT A < 4",
    "SELECT A, B FROM T ORDER BY B DESC, A",
    "SELECT A, B FROM T ORDER BY B, A DESC",
    "SELECT A FROM T ORDER BY A LIMIT 2, 3",
    "SELECT SUM(B) AS S, COUNT(*) AS N, MIN(B) AS LO, MAX(B) AS HI FROM T",
    "SELECT COUNT(B > 4) AS BIG, SUM(B == 3) AS THREES FROM T",
    "SELECT G, SUM(B) AS S, COUNT(*) AS N FROM T GROUP BY G",
    "SELECT G, MIN(B) AS LO, MAX(B) AS HI, COUNT(B > 4) AS BIG "
    "FROM T GROUP BY G",
    "SELECT * FROM L INNER JOIN R ON L.K = R.K",
    "SELECT * FROM L LEFT JOIN R ON L.K = R.K",
    "SELECT * FROM L OUTER JOIN R ON L.K = R.K",
    "SELECT L.V AS V, R.W AS W FROM L LEFT JOIN R ON L.K = R.K "
    "WHERE L.V >= 20",
    "SELECT * FROM (SELECT A, B FROM T WHERE B > 0) WHERE A > 2",
]


@pytest.mark.parametrize("query", DIFFERENTIAL_QUERIES)
def test_fast_backend_differential(query):
    """Every supported query shape: fast ≡ reference, bit for bit."""
    assert_tables_identical(_run(query, "fast"), _run(query, "reference"))


def test_figure4_differential(workload):
    """The paper's Figure 4 script (ReadExplode, PosExplode, LIMIT
    windows, FOR loops, INSERT INTO) on every partition: fast ≡
    reference."""
    checked = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        fast = run_figure4_query(
            workload.partitions, workload.reference, pid, backend="fast"
        )
        reference = run_figure4_query(
            workload.partitions, workload.reference, pid, backend="reference"
        )
        assert fast == reference, str(pid)
        checked += len(fast)
    assert checked == workload.n_reads


# -- backend registry ---------------------------------------------------------------


def test_registry_lists_both_backends():
    assert available_backends() == ["fast", "reference"]


def test_registry_unknown_backend():
    with pytest.raises(SqlError, match="unknown SQL backend"):
        get_backend("warp")
    with pytest.raises(SqlError, match="available"):
        Executor(backend="warp")


def test_executor_accepts_backend_instance():
    executor = Executor(backend=get_backend("fast"))
    assert executor.backend.name == "fast"


# -- table_from_row_dicts -----------------------------------------------------------


def test_table_from_row_dicts_empty_requires_schema():
    with pytest.raises(SqlError, match="empty row list"):
        table_from_row_dicts([])


def test_table_from_row_dicts_empty_with_schema():
    schema = Schema.of(A="int64", B="bool")
    table = table_from_row_dicts([], schema=schema)
    assert table.num_rows == 0
    assert table.schema.names == ("A", "B")
    assert [spec.kind for spec in table.schema.columns] == ["int64", "bool"]


def test_table_from_row_dicts_rows_ignore_schema():
    schema = Schema.of(Z="uint8")
    table = table_from_row_dicts([{"A": 1, "F": True}], schema=schema)
    assert table.schema.names == ("A", "F")
    assert [spec.kind for spec in table.schema.columns] == ["int64", "bool"]


# -- sort-merge join edge cases -----------------------------------------------------


def _null_key_table(n: int, value_start: int) -> Table:
    """A table whose key column is entirely NULL sentinel zeros (the
    validity mask marks every key invalid)."""
    schema = Schema.of(K="int64", V="int64")
    return Table(
        schema,
        {
            "K": np.zeros(n, dtype=np.int64),
            "V": np.arange(value_start, value_start + n, dtype=np.int64),
        },
        n,
        validity={"K": np.zeros(n, dtype=bool)},
    )


JOIN_EDGE_CASES = {
    "dup_keys_both_sides": (
        Table.from_rows(
            Schema.of(K="int64", V="int64"),
            [{"K": 1, "V": 1}, {"K": 1, "V": 2}, {"K": 2, "V": 3}],
        ),
        Table.from_rows(
            Schema.of(K="int64", W="int64"),
            [{"K": 1, "W": 10}, {"K": 1, "W": 11}, {"K": 3, "W": 12}],
        ),
    ),
    "empty_left": (
        Table.empty(Schema.of(K="int64", V="int64")),
        Table.from_rows(
            Schema.of(K="int64", W="int64"), [{"K": 1, "W": 10}]
        ),
    ),
    "empty_right": (
        Table.from_rows(
            Schema.of(K="int64", V="int64"), [{"K": 1, "V": 1}]
        ),
        Table.empty(Schema.of(K="int64", W="int64")),
    ),
    "empty_both": (
        Table.empty(Schema.of(K="int64", V="int64")),
        Table.empty(Schema.of(K="int64", W="int64")),
    ),
    "all_null_keys": (
        _null_key_table(2, 0),
        Table.from_rows(
            Schema.of(K="int64", W="int64"),
            [{"K": 0, "W": 50}, {"K": 7, "W": 51}],
        ),
    ),
}


@pytest.fixture(params=sorted(JOIN_EDGE_CASES), ids=str)
def join_edge_case(request):
    """One (left, right) edge-case pair, shared by every join kind and
    backend combination below."""
    return request.param, JOIN_EDGE_CASES[request.param]


@pytest.mark.parametrize("kind", ["INNER", "LEFT", "OUTER"])
def test_join_edge_cases_differential(join_edge_case, kind):
    """Each edge case through each join kind: fast ≡ reference."""
    _name, (left, right) = join_edge_case
    query = f"SELECT * FROM L {kind} JOIN R ON L.K = R.K"

    def run(backend: str) -> Table:
        executor = Executor(backend=backend)
        executor.register_table("L", left)
        executor.register_table("R", right)
        return executor.query(query)

    assert_tables_identical(run("fast"), run("reference"))


@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_join_duplicate_keys_cross_product(backend):
    """Duplicate keys on both sides multiply: 2 left × 2 right matches."""
    left, right = JOIN_EDGE_CASES["dup_keys_both_sides"]
    executor = Executor(backend=backend)
    executor.register_table("L", left)
    executor.register_table("R", right)
    inner = executor.query("SELECT * FROM L INNER JOIN R ON L.K = R.K")
    assert inner.num_rows == 4
    outer = executor.query("SELECT * FROM L OUTER JOIN R ON L.K = R.K")
    # 4 matches + unmatched left K=2 + unmatched right K=3.
    assert outer.num_rows == 6
    mask = outer.validity("L__V")
    assert mask is not None and int((~mask).sum()) == 1


@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_join_all_null_keys_match_zero(backend):
    """NULL join keys take part as the sentinel 0: they match real-zero
    keys on the other side (the documented NULL contract), and the key's
    invalidity carries into the output."""
    left, right = JOIN_EDGE_CASES["all_null_keys"]
    executor = Executor(backend=backend)
    executor.register_table("L", left)
    executor.register_table("R", right)
    inner = executor.query("SELECT * FROM L INNER JOIN R ON L.K = R.K")
    # Both NULL-key left rows match the single K=0 right row.
    assert inner.num_rows == 2
    assert inner.column("R__W").tolist() == [50, 50]
    mask = inner.validity("L__K")
    assert mask is not None and not mask.any()
