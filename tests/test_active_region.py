"""Tests for active-region determination: software stage and accelerator."""

import numpy as np
import pytest

from repro.accel.active_region import (
    accelerated_active_regions,
    run_active_region_partition,
)
from repro.gatk.active_region import (
    ActiveRegion,
    ActiveRegionConfig,
    ActivityProfile,
    compute_activity,
    determine_active_regions,
    extract_regions,
)
from repro.genomics.cigar import Cigar
from repro.genomics.read import AlignedRead
from repro.genomics.reference import Chromosome, ReferenceGenome
from repro.genomics.sequences import encode_sequence


def make_genome(text):
    seq = encode_sequence(text)
    return ReferenceGenome([Chromosome(1, seq, np.zeros(len(seq), dtype=bool))])


def make_read(pos, cigar_text, seq_text):
    cigar = Cigar.parse(cigar_text)
    seq = encode_sequence(seq_text)
    return AlignedRead(
        name="r", chrom=1, pos=pos, cigar=cigar, seq=seq,
        qual=np.full(len(seq), 30, dtype=np.uint8),
    )


def test_depth_and_mismatch_activity():
    genome = make_genome("AAAAAAAAAA")
    read = make_read(2, "4M", "AACA")  # mismatch at position 4
    profile = compute_activity([read], genome, 1, 0, 10)
    assert profile.depth.tolist() == [0, 0, 1, 1, 1, 1, 0, 0, 0, 0]
    assert profile.activity.tolist() == [0, 0, 0, 0, 1, 0, 0, 0, 0, 0]


def test_deletion_and_insertion_activity():
    genome = make_genome("AAAAAAAAAA")
    read = make_read(1, "2M1D2M1I1M", "AAAAGA")
    profile = compute_activity([read], genome, 1, 0, 10)
    # D at position 3; I anchored at the last aligned position (5).
    assert profile.activity[3] == 1
    assert profile.activity[5] == 1


def test_duplicates_excluded():
    genome = make_genome("AAAA")
    read = make_read(0, "4M", "CCCC")
    read.set_duplicate(True)
    profile = compute_activity([read], genome, 1, 0, 4)
    assert profile.activity.sum() == 0


def test_extract_regions_merging_and_padding():
    profile = ActivityProfile(
        1, 100,
        activity=np.array([0, 5, 0, 0, 5, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0]),
        depth=np.full(18, 10),
    )
    config = ActiveRegionConfig(min_depth=4, min_activity_fraction=0.3,
                                max_gap=4, padding=1)
    regions = extract_regions(profile, config)
    # Positions 1 and 4 merge (gap 3 <= 4); position 16 stands alone.
    assert regions == [
        ActiveRegion(1, 100 + 0, 100 + 5),
        ActiveRegion(1, 100 + 15, 100 + 17),
    ]


def test_extract_regions_depth_gate():
    profile = ActivityProfile(
        1, 0, activity=np.array([3]), depth=np.array([3])
    )
    config = ActiveRegionConfig(min_depth=4, min_activity_fraction=0.1)
    assert extract_regions(profile, config) == []


def test_extract_no_activity():
    profile = ActivityProfile(1, 0, np.zeros(5), np.full(5, 10))
    assert extract_regions(profile) == []


def test_region_helpers():
    a = ActiveRegion(1, 10, 20)
    assert len(a) == 11
    assert a.overlaps(ActiveRegion(1, 20, 25))
    assert not a.overlaps(ActiveRegion(1, 21, 25))
    assert not a.overlaps(ActiveRegion(2, 10, 20))


def test_config_validation():
    with pytest.raises(ValueError):
        ActiveRegionConfig(min_activity_fraction=0.0)


def test_accelerator_buffers_match_software(workload):
    """The hardware activity/depth buffers equal the software profile on
    every partition window."""
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        ref_row = workload.reference.lookup(pid)
        result = run_active_region_partition(part, ref_row)
        from repro.tables.genomic_tables import table_to_reads

        reads = table_to_reads(part)
        expected = compute_activity(
            reads, workload.genome, pid.chrom, result.base,
            len(result.activity),
        )
        assert np.array_equal(result.activity, expected.activity), str(pid)
        assert np.array_equal(result.depth, expected.depth), str(pid)


def test_accelerated_regions_equal_software(workload):
    sw = determine_active_regions(workload.reads, workload.genome)
    hw = accelerated_active_regions(
        workload.partitions, workload.reference, workload.genome
    )
    assert sw == hw
    # The synthetic reads carry errors, so some regions exist.
    assert sum(len(r) for r in sw.values()) > 0
