"""Tests for batch scheduling over the host API (Section III-E overlap)."""

import pytest

from repro.runtime.batch import (
    BatchJob,
    compare_schedules,
    run_batch_pipelined,
    run_batch_serial,
)
from repro.runtime.device import CLOCK_HZ


def jobs_with(host_seconds, n=6, cycles=250_000, input_bytes=1_000_000):
    return [
        BatchJob(name=f"j{i}", input_bytes=input_bytes, cycles=cycles,
                 host_seconds=host_seconds)
        for i in range(n)
    ]


def test_serial_accounts_everything():
    jobs = jobs_with(host_seconds=1e-3, n=3)
    outcome = run_batch_serial(jobs)
    compute = 3 * 250_000 / CLOCK_HZ
    host = 3 * 1e-3
    assert outcome.wall_seconds >= compute + host
    assert outcome.jobs == 3


def test_overlap_hides_host_work():
    """With host work comparable to accelerator time, pipelining approaches
    max(host, accel) per job instead of their sum."""
    accel_seconds = 250_000 / CLOCK_HZ  # 1 ms
    jobs = jobs_with(host_seconds=accel_seconds, n=8)
    comparison = compare_schedules(jobs)
    assert comparison["pipelined_seconds"] < comparison["serial_seconds"]
    assert comparison["overlap_speedup"] > 1.2


def test_overlap_useless_without_host_work():
    jobs = jobs_with(host_seconds=0.0, n=4)
    comparison = compare_schedules(jobs)
    assert comparison["overlap_speedup"] == pytest.approx(1.0, abs=0.05)


def test_pipelined_results_cover_all_jobs():
    outcome = run_batch_pipelined(jobs_with(1e-4, n=5))
    assert outcome.jobs == 5
    assert outcome.wall_seconds > 0


def test_pipelined_zero_jobs():
    outcome = run_batch_pipelined([])
    assert outcome.jobs == 0
    assert outcome.wall_seconds == 0.0


def test_pipelined_jobs_without_host_work():
    jobs = jobs_with(host_seconds=0.0, n=3)
    outcome = run_batch_pipelined(jobs)
    assert outcome.jobs == 3
    # No host work to overlap: matches the serial schedule exactly.
    assert outcome.wall_seconds == pytest.approx(
        run_batch_serial(jobs).wall_seconds
    )


def test_overlap_never_slower_on_host_bound_batch():
    """Host work dominating accelerator time: pipelining still must not
    lose to the serial schedule."""
    accel_seconds = 250_000 / CLOCK_HZ
    jobs = jobs_with(host_seconds=50 * accel_seconds, n=6)
    comparison = compare_schedules(jobs)
    assert comparison["overlap_speedup"] >= 1.0


def test_output_transfers_charged():
    with_output = [BatchJob("a", 1_000_000, 100_000, output_bytes=50_000_000)]
    without = [BatchJob("a", 1_000_000, 100_000)]
    assert (run_batch_serial(with_output).wall_seconds
            > run_batch_serial(without).wall_seconds)
