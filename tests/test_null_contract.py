"""The NULL contract, pinned as a truth table for both backends.

The dialect has no three-valued logic: NULLs arise only from the
unmatched side of LEFT/OUTER joins and are materialized as sentinels by
``null_like`` (0 / False / empty array).  Every operator thereafter
treats the sentinel as an ordinary value — ``apply_binop`` sees a plain
``0``, aggregates include sentinel rows, group-by keys merge NULLs with
real zeros — while validity masks let hosts tell sentinel from data.
These tests pin that contract at the helper level (the historical
``_apply_binop``/``_null_like`` names included) and end-to-end through
queries on both execution backends.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sql import Executor, SqlError
from repro.sql.backends import apply_binop, null_like
from repro.sql.executor import _apply_binop, _null_like
from repro.tables.schema import Schema
from repro.tables.table import Table


@pytest.fixture(params=["reference", "fast"])
def backend(request):
    return request.param


def test_backcompat_aliases_are_the_contract():
    """The executor's historical private names are the shared helpers."""
    assert _apply_binop is apply_binop
    assert _null_like is null_like


# -- null_like ----------------------------------------------------------------------


def test_null_like_sentinels():
    assert null_like(5) == 0 and isinstance(null_like(5), int)
    assert null_like(np.int64(5)) == 0
    assert null_like(True) is False
    assert null_like(np.bool_(True)) is False
    empty = null_like(np.array([1, 2], dtype=np.uint8))
    assert isinstance(empty, np.ndarray)
    assert empty.size == 0 and empty.dtype == np.uint8


# -- apply_binop truth table --------------------------------------------------------

#: (op, left, right, expected) — NULL participates as its sentinel, so
#: the interesting rows pair the sentinel 0/False with real values.
BINOP_TRUTH_TABLE = [
    ("==", 0, 0, True),     # NULL == NULL
    ("==", 0, 1, False),    # NULL == value
    ("!=", 0, 1, True),
    ("!=", 0, 0, False),
    ("<", 0, 1, True),
    ("<", 0, -1, False),
    ("<=", 0, 0, True),
    (">", 0, -1, True),
    (">", 0, 0, False),
    (">=", 0, 1, False),
    ("+", 0, 1, 1),         # NULL + 1 == 1
    ("-", 0, 3, -3),
    ("*", 0, 9, 0),
    ("/", 0, 2, 0),
    ("/", 7, 2, 3),         # integer / floors (the hardware ALU divide)
    ("/", 7.0, 2.0, 3.5),   # float / is true division
    ("==", False, False, True),   # boolean NULL sentinel
    ("+", False, True, 1),
    ("*", True, True, 1),
]


@pytest.mark.parametrize(
    "op,left,right,expected", BINOP_TRUTH_TABLE,
    ids=[f"{op}({left},{right})" for op, left, right, _ in BINOP_TRUTH_TABLE],
)
def test_apply_binop_truth_table(op, left, right, expected):
    result = apply_binop(op, left, right)
    assert result == expected
    assert isinstance(result, type(expected))


def test_apply_binop_unknown_operator():
    with pytest.raises(SqlError, match="unsupported operator"):
        apply_binop("%", 1, 2)


# -- end-to-end through queries -----------------------------------------------------


def _null_producing_executor(backend: str) -> Executor:
    """L LEFT JOIN R leaves K=2 and K=3 unmatched: their W is the NULL
    sentinel 0, marked invalid."""
    executor = Executor(backend=backend)
    executor.register_table("L", Table.from_rows(
        Schema.of(K="int64", V="int64"),
        [{"K": 1, "V": 10}, {"K": 2, "V": 20}, {"K": 3, "V": 30}],
    ))
    executor.register_table("R", Table.from_rows(
        Schema.of(K="int64", W="int64"),
        [{"K": 1, "W": 5}],
    ))
    executor.execute("""
    CREATE TABLE J AS
    SELECT L.K AS K, L.V AS V, R.W AS W FROM L LEFT JOIN R ON L.K = R.K;
    """)
    return executor


def test_query_null_materializes_as_zero(backend):
    executor = _null_producing_executor(backend)
    assert executor.tables["J"].column("W").tolist() == [5, 0, 0]
    # The raw join output carries the validity mask for the null-filled
    # side; the projection above re-materializes values (masks are a
    # row-selection property, not an expression one).
    raw = executor.query("SELECT * FROM L LEFT JOIN R ON L.K = R.K")
    mask = raw.validity("R__W")
    assert mask is not None and mask.tolist() == [True, False, False]


def test_query_null_compares_as_zero(backend):
    """``NULL == 0`` is true: WHERE W == 0 selects the unmatched rows."""
    executor = _null_producing_executor(backend)
    nulls = executor.query("SELECT K FROM J WHERE W == 0")
    assert nulls.column("K").tolist() == [2, 3]


def test_query_null_arithmetic_sees_zero(backend):
    """``NULL + 1 == 1``: arithmetic over the sentinel is ordinary; the
    domain-shift idiom (project ``W + 1``) leaves 0 unoccupied so hosts
    can distinguish NULL-shifted values."""
    executor = _null_producing_executor(backend)
    shifted = executor.query("SELECT W + 1 AS WP FROM J")
    assert shifted.column("WP").tolist() == [6, 1, 1]


def test_query_null_aggregates(backend):
    """COUNT(expr) counts truthiness so NULL (0) rows drop out; SUM, MIN,
    MAX see the literal 0."""
    executor = _null_producing_executor(backend)
    aggregated = executor.query(
        "SELECT COUNT(W) AS NW, COUNT(*) AS N, SUM(W) AS S, "
        "MIN(W) AS LO, MAX(W) AS HI FROM J"
    )
    row = next(aggregated.rows())
    assert row == {"NW": 1, "N": 3, "S": 5, "LO": 0, "HI": 5}


def test_query_null_groups_with_zero(backend):
    """Group-by keys treat NULL as the value 0: all NULLs land in one
    group, together with real zeros."""
    executor = _null_producing_executor(backend)
    grouped = executor.query(
        "SELECT W, COUNT(*) AS N FROM J GROUP BY W"
    )
    assert {int(w): int(n) for w, n in
            zip(grouped.column("W"), grouped.column("N"))} == {5: 1, 0: 2}
