"""Tests for the merge-sort hardware and the coordinate-sort driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.sort import coordinate_sort_reads, run_hw_sort
from repro.hw.engine import Engine
from repro.hw.modules.sorter import MergeUnit, build_merge_tree, sorted_run_flits

from hw_harness import drive


def merge_two(a, b):
    unit = MergeUnit("m")
    out, _ = drive(unit, {"a": sorted_run_flits(a), "b": sorted_run_flits(b)})
    return [flit["key"] for flit in out["out"] if flit.fields]


def test_merge_unit_basic():
    assert merge_two([1, 3, 5], [2, 4, 6]) == [1, 2, 3, 4, 5, 6]


def test_merge_unit_uneven_lengths():
    assert merge_two([5], [1, 2, 3, 4]) == [1, 2, 3, 4, 5]
    assert merge_two([1, 2, 3, 4], [5]) == [1, 2, 3, 4, 5]


def test_merge_unit_empty_sides():
    assert merge_two([], [1, 2]) == [1, 2]
    assert merge_two([1, 2], []) == [1, 2]
    assert merge_two([], []) == []


def test_merge_unit_duplicates_stable():
    unit = MergeUnit("m")
    a = sorted_run_flits([1, 2], payload={"side": "a"})
    b = sorted_run_flits([1, 2], payload={"side": "b"})
    out, _ = drive(unit, {"a": a, "b": b})
    flits = [f for f in out["out"] if f.fields]
    assert [(f["key"], f["side"]) for f in flits] == [
        (1, "a"), (1, "b"), (2, "a"), (2, "b")
    ]


def test_merge_emits_single_terminator():
    unit = MergeUnit("m")
    out, _ = drive(unit, {"a": sorted_run_flits([1]), "b": sorted_run_flits([2])})
    assert sum(1 for f in out["out"] if f.last) == 1


def test_build_merge_tree_validation():
    engine = Engine()
    with pytest.raises(ValueError):
        build_merge_tree(engine, "t", 3)
    with pytest.raises(ValueError):
        build_merge_tree(engine, "t", 1)


def test_merge_tree_unit_count():
    engine = Engine()
    _leaves, _out, units = build_merge_tree(engine, "t", 8)
    assert len(units) == 7  # 4 + 2 + 1


def test_hw_sort_random():
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 1000, size=200).tolist()
    result = run_hw_sort(keys, n_leaves=8)
    assert result.keys == sorted(keys)


def test_hw_sort_carries_tags():
    keys = [5, 1, 4, 2, 3]
    result = run_hw_sort(keys, tags=["e", "a", "d", "b", "c"], n_leaves=2)
    assert result.keys == [1, 2, 3, 4, 5]
    assert result.tags == ["a", "b", "c", "d", "e"]


def test_hw_sort_empty():
    assert run_hw_sort([], n_leaves=4).keys == []


def test_hw_sort_throughput():
    keys = list(range(500, 0, -1))
    result = run_hw_sort(keys, n_leaves=8)
    # One record per cycle plus tree latency (~log leaves) and framing.
    assert result.stats.cycles < 700


@given(st.lists(st.integers(-100, 100), max_size=80), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_hw_sort_property(keys, leaves_pow):
    result = run_hw_sort(keys, n_leaves=2 ** leaves_pow)
    assert result.keys == sorted(keys)


def test_coordinate_sort_reads(small_reads):
    shuffled = list(reversed(small_reads))
    ordered, stats = coordinate_sort_reads(shuffled)
    keys = [(read.chrom, read.pos) for read in ordered]
    assert keys == sorted(keys)
    assert sorted(id(r) for r in ordered) == sorted(id(r) for r in shuffled)
    assert stats.cycles > 0
