"""Unit tests for CIGAR parsing and alignment arithmetic (paper Section II)."""

import pytest

from repro.genomics.cigar import (
    Cigar,
    CigarElement,
    decode_elements,
    encode_elements,
)


def test_parse_simple():
    cigar = Cigar.parse("7M1I5M")
    assert str(cigar) == "7M1I5M"
    assert len(cigar) == 3


def test_parse_figure2_read1():
    # Read 1 of Figure 2: 13 read bases, 12 reference positions.
    cigar = Cigar.parse("7M1I5M")
    assert cigar.read_length() == 13
    assert cigar.reference_length() == 12


def test_parse_figure2_read2():
    # Read 2 of Figure 2: (3S, 6M, 1D, 2M).
    cigar = Cigar.parse("3S6M1D2M")
    assert cigar.read_length() == 11  # 3S + 6M + 2M
    assert cigar.reference_length() == 9  # 6M + 1D + 2M
    assert cigar.leading_soft_clip() == 3
    assert cigar.trailing_soft_clip() == 0


def test_parse_rejects_garbage():
    for bad in ("", "M", "3X", "3M4", "x3M", "3m"):
        with pytest.raises(ValueError):
            Cigar.parse(bad)


def test_element_validation():
    with pytest.raises(ValueError):
        CigarElement(0, "M")
    with pytest.raises(ValueError):
        CigarElement(5, "X")


def test_equality_and_hash():
    a = Cigar.parse("5M")
    b = Cigar.from_pairs([(5, "M")])
    assert a == b
    assert hash(a) == hash(b)


def test_walk_matches_paper_figure3():
    # Figure 3: POS=104, CIGAR=2S,3M,1I,1M,1D,2M.
    cigar = Cigar.parse("2S3M1I1M1D2M")
    steps = list(cigar.walk(104))
    ops = [op for op, _, _ in steps]
    assert ops == ["M", "M", "M", "I", "M", "D", "M", "M"]
    ref_positions = [p for op, p, _ in steps if op != "I"]
    assert ref_positions == [104, 105, 106, 107, 108, 109, 110]
    # Soft-clipped bases consume read indices 0-1 but never appear.
    read_indices = [i for op, _, i in steps if op != "D"]
    assert read_indices == [2, 3, 4, 5, 6, 7, 8]


def test_walk_insertion_has_no_ref_pos():
    cigar = Cigar.parse("1M1I1M")
    steps = list(cigar.walk(10))
    assert steps[1][0] == "I"
    assert steps[1][1] == -1


def test_walk_deletion_has_no_read_index():
    cigar = Cigar.parse("1M1D1M")
    steps = list(cigar.walk(10))
    assert steps[1][0] == "D"
    assert steps[1][2] == -1


def test_unclipped_start():
    cigar = Cigar.parse("3S6M1D2M")
    assert cigar.unclipped_start(100) == 97


def test_unclipped_end_with_trailing_clip():
    cigar = Cigar.parse("5M2S")
    # alignment covers 100..104, plus 2 clipped bases -> 106.
    assert cigar.unclipped_end(100) == 106


def test_unclipped_end_no_clip():
    cigar = Cigar.parse("5M")
    assert cigar.unclipped_end(100) == 104


def test_is_canonical():
    assert Cigar.parse("3S5M2S").is_canonical()
    assert not Cigar.parse("3M2S3M").is_canonical()
    assert not Cigar.parse("3M4M").is_canonical()


def test_encode_decode_roundtrip():
    cigar = Cigar.parse("2S3M1I1M1D2M")
    assert decode_elements(encode_elements(cigar)) == cigar


def test_encode_rejects_huge_elements():
    with pytest.raises(ValueError):
        encode_elements(Cigar.from_pairs([(1 << 14, "M")]))


def test_read_length_only_counts_read_consuming_ops():
    assert Cigar.parse("10D").read_length() == 0
    assert Cigar.parse("10I").read_length() == 10
    assert Cigar.parse("10S").read_length() == 10


def test_reference_length_only_counts_ref_consuming_ops():
    assert Cigar.parse("10I").reference_length() == 0
    assert Cigar.parse("10S").reference_length() == 0
    assert Cigar.parse("10D").reference_length() == 10
