"""Test harness for driving individual hardware modules.

``drive`` wires list-backed sources to a module's input ports and
collecting sinks to its output ports, runs the engine to quiescence, and
returns everything each output produced.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.hw.engine import Engine, RunStats
from repro.hw.flit import Flit
from repro.hw.module import Module


class ListSource(Module):
    """Emits a pre-loaded flit list, one flit per cycle."""

    def __init__(self, name: str, flits: Sequence[Flit]):
        super().__init__(name)
        self._flits: List[Flit] = list(flits)
        self._cursor = 0

    def tick(self, cycle: int) -> None:
        if self._cursor >= len(self._flits):
            return
        out = self.output()
        if not out.try_push(self._flits[self._cursor]):
            self._note_stalled(out)
            return
        self._cursor += 1
        self._note_busy()

    def is_idle(self) -> bool:
        return self._cursor >= len(self._flits)


class ListSink(Module):
    """Collects every flit it receives."""

    def __init__(self, name: str):
        super().__init__(name)
        self.collected: List[Flit] = []

    def tick(self, cycle: int) -> None:
        queue = self.input()
        if queue.can_pop():
            self.collected.append(queue.pop())
            self._note_busy()


def drive(
    module: Module,
    inputs: Dict[str, Iterable[Flit]],
    out_ports: Sequence[str] = ("out",),
    max_cycles: int = 1_000_000,
) -> Tuple[Dict[str, List[Flit]], RunStats]:
    """Run ``module`` with the given per-port input flits; returns the
    flits collected on each output port plus run statistics."""
    engine = Engine()
    engine.add_module(module)
    for port, flits in inputs.items():
        source = ListSource(f"src.{port}", list(flits))
        engine.add_module(source)
        engine.connect(source, module, in_port=port)
    sinks = {}
    for port in out_ports:
        sink = ListSink(f"sink.{port}")
        engine.add_module(sink)
        engine.connect(module, sink, out_port=port)
        sinks[port] = sink
    stats = engine.run(max_cycles=max_cycles)
    return {port: sink.collected for port, sink in sinks.items()}, stats


def values(flits: Iterable[Flit], field: str = "value") -> List[object]:
    """Payload values of the given field, skipping boundary flits."""
    return [flit[field] for flit in flits if field in flit]


def items_of(flits: Iterable[Flit], field: str = "value") -> List[List[object]]:
    """Group payload values into items using the last bits."""
    items: List[List[object]] = []
    current: List[object] = []
    for flit in flits:
        if field in flit.fields:
            current.append(flit[field])
        if flit.last:
            items.append(current)
            current = []
    if current:
        items.append(current)
    return items
