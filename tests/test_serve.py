"""Differential suite for the multi-tenant job service.

The headline invariant of DESIGN.md §3.8: a job submitted through
:class:`~repro.serve.JobService` produces results bit-identical to the
same stage run directly via ``run_partitioned``/``run_sharded`` — for
every (tenants, devices, workers) topology, and under an injected
fault plan.  The service may reorder, interleave, time-multiplex, and
retry; it may never change a single output bit.
"""

import numpy as np
import pytest

from repro.accel.scheduler import run_partitioned
from repro.accel.sharding import run_sharded
from repro.eval.workloads import make_workload
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.serve import (
    COMPLETED,
    QUEUED,
    REJECT_BACKLOG,
    REJECT_QUOTA,
    REJECTED,
    SERVE_FAULT_SITE,
    JobService,
    JobSpec,
    ServiceReport,
)
from repro.serve.trace import SERVE_STAGES, stage_driver, stage_partitions

BQSR_FIELDS = ("total_cycle", "total_context", "error_cycle", "error_context")


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        n_reads=90,
        read_length=50,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=900,
        seed=105,
    )


@pytest.fixture(scope="module")
def direct_results(workload):
    """Per-stage ground truth from the direct scheduler."""
    out = {}
    for stage in SERVE_STAGES:
        results, _stats = run_partitioned(
            stage_driver(stage, workload), stage_partitions(stage, workload), 2
        )
        out[stage] = results
    return out


def _assert_stage_identical(stage, got, want):
    assert set(got) == set(want)
    for pid in want:
        if stage == "markdup":
            assert got[pid].quality_sums == want[pid].quality_sums, str(pid)
        elif stage == "metadata":
            assert got[pid].nm == want[pid].nm, str(pid)
            assert got[pid].md == want[pid].md, str(pid)
            assert got[pid].uq == want[pid].uq, str(pid)
        else:
            for field in BQSR_FIELDS:
                assert np.array_equal(
                    getattr(got[pid], field), getattr(want[pid], field)
                ), (str(pid), field)


def _schedule_mixed(service, workload, tenants, jobs):
    """One job per index, stages round-robin, tenants round-robin."""
    for index in range(jobs):
        stage = SERVE_STAGES[index % len(SERVE_STAGES)]
        service.schedule(
            JobSpec(
                tenant=f"t{index % tenants}",
                driver=stage_driver(stage, workload),
                partitions=stage_partitions(stage, workload),
                n_pipelines=2,
            ),
            at_cycles=index * 1500,
        )


TOPOLOGIES = [
    (tenants, devices, workers)
    for tenants in (1, 8)
    for devices in (1, 2)
    for workers in (1, 4)
]


@pytest.mark.parametrize("tenants,devices,workers", TOPOLOGIES)
def test_service_bit_identical(
    workload, direct_results, tenants, devices, workers
):
    service = JobService(devices=devices, workers=workers)
    jobs = max(tenants, len(SERVE_STAGES))
    _schedule_mixed(service, workload, tenants, jobs)
    summary = service.run_until_idle()
    assert summary.jobs_admitted == jobs
    assert summary.jobs_completed == jobs
    assert summary.jobs_rejected == 0
    for status in service.jobs():
        assert status.state == COMPLETED
        _assert_stage_identical(
            status.stage,
            service.results(status.job_id),
            direct_results[status.stage],
        )


def test_virtual_timeline_invariant_across_workers(workload):
    """Host-side parallelism must not leak into the virtual clock:
    same trace, same devices — identical events at any ``workers``."""
    def run(workers):
        service = JobService(devices=2, workers=workers)
        _schedule_mixed(service, workload, tenants=4, jobs=6)
        summary = service.run_until_idle()
        return service.events, summary.clock_cycles

    events_1, clock_1 = run(1)
    events_4, clock_4 = run(4)
    assert events_1 == events_4
    assert clock_1 == clock_4


def test_service_matches_run_sharded(workload):
    """The service's outputs agree with the direct multi-device path
    too (which is itself bit-identical to the serial schedule)."""
    driver = stage_driver("metadata", workload)
    partitions = stage_partitions("metadata", workload)
    direct, _stats = run_sharded(driver, partitions, 2, devices=2, workers=2)
    service = JobService(devices=2, workers=2)
    status = service.submit(
        JobSpec(
            tenant="a", driver=driver, partitions=partitions, n_pipelines=2
        )
    )
    service.run_until_idle()
    _assert_stage_identical(
        "metadata", service.results(status.job_id), direct
    )


FAULT_PLAN = FaultPlan(
    seed=7,
    specs=(
        FaultSpec("transfer_error", site=SERVE_FAULT_SITE, count=2, at=(0, 2)),
        FaultSpec("launch_error", site=SERVE_FAULT_SITE, count=1, at=(4,)),
    ),
)


@pytest.mark.parametrize("workers", (1, 4))
def test_service_bit_identical_under_faults(workload, direct_results, workers):
    service = JobService(
        devices=2,
        workers=workers,
        fault_plan=FAULT_PLAN,
        retry_policy=RetryPolicy(max_retries=3),
    )
    _schedule_mixed(service, workload, tenants=2, jobs=6)
    summary = service.run_until_idle()
    assert summary.jobs_completed == 6
    assert summary.jobs_failed == 0
    assert summary.retries == 3
    assert summary.faults == {"launch_error": 1, "transfer_error": 2}
    for status in service.jobs():
        _assert_stage_identical(
            status.stage,
            service.results(status.job_id),
            direct_results[status.stage],
        )


def test_fault_budget_fails_job_not_service(workload):
    """A wave that faults past its budget fails its own job; other
    tenants' jobs are untouched."""
    plan = FaultPlan(
        seed=7,
        specs=(
            FaultSpec(
                "launch_error", site=SERVE_FAULT_SITE, count=1,
                at=(0,), attempts=5,
            ),
        ),
    )
    service = JobService(
        devices=1,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_retries=1),
    )
    doomed = service.submit(
        JobSpec(
            tenant="a",
            driver=stage_driver("markdup", workload),
            partitions=stage_partitions("markdup", workload),
            n_pipelines=2,
        )
    )
    healthy = service.submit(
        JobSpec(
            tenant="b",
            driver=stage_driver("markdup", workload),
            partitions=stage_partitions("markdup", workload),
            n_pipelines=2,
        )
    )
    summary = service.run_until_idle()
    assert service.status(doomed.job_id).state == "failed"
    assert service.status(healthy.job_id).state == COMPLETED
    assert summary.jobs_failed == 1
    assert summary.jobs_completed == 1
    with pytest.raises(RuntimeError):
        service.results(doomed.job_id)


# -- admission control --------------------------------------------------------------


def _one_partition_spec(workload, tenant):
    return JobSpec(
        tenant=tenant,
        driver=stage_driver("markdup", workload),
        partitions=stage_partitions("markdup", workload)[:1],
        n_pipelines=2,
    )


def test_admission_quota_and_backlog(workload):
    service = JobService(devices=1, quota=2, max_backlog=3)
    assert service.submit(_one_partition_spec(workload, "a")).state == QUEUED
    assert service.submit(_one_partition_spec(workload, "a")).state == QUEUED
    over_quota = service.submit(_one_partition_spec(workload, "a"))
    assert over_quota.state == REJECTED
    assert service.submit(_one_partition_spec(workload, "b")).state == QUEUED
    over_backlog = service.submit(_one_partition_spec(workload, "b"))
    assert over_backlog.state == REJECTED
    reasons = [
        fields["reason"]
        for event, fields in service.events
        if event == "serve.reject"
    ]
    assert reasons == [REJECT_QUOTA, REJECT_BACKLOG]
    summary = service.run_until_idle()
    assert summary.jobs_completed == 3
    assert summary.jobs_rejected == 2
    assert summary.tenants["a"].rejected == 1
    assert summary.tenants["b"].rejected == 1
    # capacity freed: the same tenant is admitted again
    assert service.submit(_one_partition_spec(workload, "a")).state == QUEUED


def test_weighted_fair_dispatch(workload):
    """With weights {a: 1, b: 3} and equal-size jobs, the first eight
    dispatches split 2/6 — the WFQ pattern a,b,b,b,a,b,b,b."""
    service = JobService(
        devices=1, quota=16, max_backlog=32, weights={"a": 1.0, "b": 3.0}
    )
    for tenant in ("a", "b"):
        for _ in range(8):
            service.submit(_one_partition_spec(workload, tenant))
    service.run_until_idle()
    dispatched = [
        fields["tenant"]
        for event, fields in service.events
        if event == "serve.dispatch"
    ]
    assert dispatched[:8] == ["a", "b", "b", "b", "a", "b", "b", "b"]
    assert dispatched.count("a") == 8 and dispatched.count("b") == 8


# -- status / streaming -------------------------------------------------------------


def test_status_and_partial_results(workload, direct_results):
    partitions = stage_partitions("metadata", workload)
    service = JobService(devices=1)
    status = service.submit(
        JobSpec(
            tenant="a",
            driver=stage_driver("metadata", workload),
            partitions=partitions,
            n_pipelines=2,
        )
    )
    assert status.state == QUEUED
    assert status.waves_total > 1
    assert service.partial_results(status.job_id) == {}
    service.run(max_dispatches=1)
    service.run(max_dispatches=1)
    mid = service.status(status.job_id)
    assert mid.state == "running"
    assert 0 < mid.waves_done < mid.waves_total
    partial = service.partial_results(status.job_id)
    assert partial
    for pid, result in partial.items():
        assert result.nm == direct_results["metadata"][pid].nm
    service.run_until_idle()
    done = service.status(status.job_id)
    assert done.state == COMPLETED
    assert done.waves_done == done.waves_total
    assert done.latency_cycles > 0


def test_stream_yields_progress(workload):
    service = JobService(devices=1)
    status = service.submit(
        JobSpec(
            tenant="a",
            driver=stage_driver("markdup", workload),
            partitions=stage_partitions("markdup", workload),
            n_pipelines=2,
        )
    )
    snapshots = list(service.stream(status.job_id))
    assert snapshots[-1].state == COMPLETED
    done_counts = [snap.waves_done for snap in snapshots]
    assert done_counts == sorted(done_counts)


# -- observability ------------------------------------------------------------------


def test_ledger_events_and_report(workload, tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    manifest = RunManifest(workload="serve-test", config={}, seed=0)
    with run_context(manifest, ledger):
        service = JobService(devices=2, quota=1, max_backlog=8)
        _schedule_mixed(service, workload, tenants=3, jobs=3)
        service.schedule(_one_partition_spec(workload, "t0"), at_cycles=0)
        service.run_until_idle()
    assert ledger.events("serve.admit", run_id=manifest.run_id)
    assert ledger.events("serve.dispatch", run_id=manifest.run_id)
    assert ledger.events("serve.wave.done", run_id=manifest.run_id)
    done = ledger.events("serve.job.done", run_id=manifest.run_id)
    assert len(done) == 3
    assert all(record["latency_cycles"] > 0 for record in done)
    report = ServiceReport.from_ledger(ledger, run_id=manifest.run_id)
    assert report.admitted == 3
    assert report.rejected == 1
    assert report.completed == 3
    assert report.dropped_admitted == 0
    for tenant_report in report.tenants.values():
        if tenant_report.completed:
            assert tenant_report.p50_latency_cycles > 0
            assert (
                tenant_report.p99_latency_cycles
                >= tenant_report.p50_latency_cycles
            )


def test_registry_metrics(workload):
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    service = JobService(devices=1, quota=1, max_backlog=8, registry=registry)
    service.submit(_one_partition_spec(workload, "a"))
    service.submit(_one_partition_spec(workload, "a"))
    service.run_until_idle()
    assert registry.value("serve.jobs.admitted", tenant="a") == 1
    assert (
        registry.value(
            "serve.jobs.rejected", tenant="a", reason=REJECT_QUOTA
        )
        == 1
    )
    assert registry.value("serve.jobs.completed", tenant="a") == 1
    assert registry.value("serve.waves.dispatched") == 1
    assert registry.value("serve.tenant.cycles", tenant="a") > 0
    depth = registry.find("serve.queue.depth")
    assert depth is not None and depth.total == 2
