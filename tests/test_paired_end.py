"""Paired-end coverage: mark duplicates with mate-aware keys (footnote 1)."""

import numpy as np

from repro.accel.markdup import accelerated_mark_duplicates
from repro.gatk.markdup import mark_duplicates
from repro.genomics import ReadSimulator, SimulatorConfig
from repro.genomics.cigar import Cigar
from repro.genomics.read import (
    FLAG_FIRST_IN_PAIR,
    FLAG_PAIRED,
    FLAG_REVERSE,
    FLAG_SECOND_IN_PAIR,
    AlignedRead,
    pair_key,
)


def make_pair(name, chrom, start, mate_start, read_len=20):
    first = AlignedRead(
        name=name, chrom=chrom, pos=start,
        cigar=Cigar.parse(f"{read_len}M"),
        seq=np.zeros(read_len, dtype=np.uint8),
        qual=np.full(read_len, 30, dtype=np.uint8),
        flags=FLAG_PAIRED | FLAG_FIRST_IN_PAIR,
        mate_chrom=chrom, mate_pos=mate_start,
    )
    second = AlignedRead(
        name=name, chrom=chrom, pos=mate_start,
        cigar=Cigar.parse(f"{read_len}M"),
        seq=np.zeros(read_len, dtype=np.uint8),
        qual=np.full(read_len, 30, dtype=np.uint8),
        flags=FLAG_PAIRED | FLAG_SECOND_IN_PAIR | FLAG_REVERSE,
        mate_chrom=chrom, mate_pos=start,
    )
    return [first, second]


def test_pair_key_concatenates_both_ends():
    pair_a = make_pair("a", 1, 100, 300)
    key = pair_key(pair_a[0], pair_a[1])
    assert len(key) == 2  # two (chrom, pos, strand) components
    assert key == pair_key(pair_a[1], pair_a[0])


def test_duplicate_pairs_marked_together():
    pair_a = make_pair("a", 1, 100, 300)
    pair_b = make_pair("b", 1, 100, 300)  # same fragment coordinates
    reads = pair_a + pair_b
    reads[0].qual[:] = 35  # pair a wins on quality
    reads[1].qual[:] = 35
    result = mark_duplicates(reads)
    # Both reads of pair b flagged, both of pair a kept.
    # one pair fully duplicate, the other fully kept
    names_dup = {r.name for r in result.sorted_reads if r.is_duplicate}
    assert names_dup == {"b"}
    assert result.num_duplicates == 2


def test_pairs_with_different_mate_positions_not_duplicates():
    pair_a = make_pair("a", 1, 100, 300)
    pair_b = make_pair("b", 1, 100, 420)  # same start, different mate
    result = mark_duplicates(pair_a + pair_b)
    assert result.num_duplicates == 0


def test_single_read_never_duplicates_a_pair():
    pair = make_pair("a", 1, 100, 300)
    single = AlignedRead(
        name="s", chrom=1, pos=100, cigar=Cigar.parse("20M"),
        seq=np.zeros(20, dtype=np.uint8),
        qual=np.full(20, 50, dtype=np.uint8),
    )
    result = mark_duplicates(pair + [single])
    assert result.num_duplicates == 0


def test_accelerated_path_handles_pairs(small_genome):
    sim = ReadSimulator(small_genome, SimulatorConfig(seed=17, read_length=40))
    reads = sim.simulate_pairs(30)
    hw = accelerated_mark_duplicates(reads)
    sw = mark_duplicates(reads)
    assert hw.duplicate_indices == sw.duplicate_indices


def test_simulated_pairs_have_consistent_mate_info(small_genome):
    sim = ReadSimulator(small_genome, SimulatorConfig(seed=18, read_length=40))
    reads = sim.simulate_pairs(20)
    by_name = {}
    for read in reads:
        by_name.setdefault(read.name, []).append(read)
    for name, mates in by_name.items():
        assert len(mates) == 2
        first, second = mates
        assert first.mate_pos == second.pos
        assert second.mate_pos == first.pos
        assert first.mate_chrom == second.chrom
