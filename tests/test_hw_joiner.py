"""Unit tests for the Joiner module (Figure 6)."""

from repro.hw.flit import INS, Flit
from repro.hw.modules import Joiner

from hw_harness import drive


def keyed(pairs, key="key", data="data"):
    """Frame (key, value) pairs as one item."""
    flits = [Flit({key: k, data: v}) for k, v in pairs]
    if flits:
        flits[-1].last = True
    else:
        flits = [Flit({}, last=True)]
    return flits


def join(mode, a_items, b_items, key_b="key"):
    a = [f for item in a_items for f in item]
    b = [f for item in b_items for f in item]
    joiner = Joiner("j", mode=mode, key_a="key", key_b=key_b)
    out, _ = drive(joiner, {"a": a, "b": b})
    return out["out"]


def test_inner_join_matching_keys():
    a = [keyed([(1, "a1"), (3, "a3"), (5, "a5")])]
    b = [keyed([(1, "b1"), (2, "b2"), (5, "b5")], data="rdata")]
    out = join("inner", a, b)
    rows = [(f["key"], f["data"], f["rdata"]) for f in out if f.fields]
    assert rows == [(1, "a1", "b1"), (5, "a5", "b5")]


def test_inner_join_emits_item_boundary():
    a = [keyed([(1, "x")])]
    b = [keyed([(9, "y")])]
    out = join("inner", a, b)
    # No matches: one boundary flit only, keeping item alignment.
    assert len(out) == 1
    assert out[0].last and not out[0].fields


def test_left_join_keeps_unmatched_left():
    a = [keyed([(1, "a1"), (2, "a2")])]
    b = [keyed([(2, "b2")], data="rdata")]
    out = join("left", a, b)
    rows = [(f["key"], f.get("rdata")) for f in out if f.fields]
    assert rows == [(1, None), (2, "b2")]


def test_outer_join_keeps_both():
    a = [keyed([(1, "a1")])]
    b = [keyed([(2, "b2")], data="rdata")]
    out = join("outer", a, b)
    keys = [f["key"] for f in out if f.fields]
    assert sorted(keys) == [1, 2]


def test_ins_passthrough_in_left_join():
    a = [keyed([(1, "a1"), (INS, "ins"), (2, "a2")])]
    b = [keyed([(1, "b1"), (2, "b2")], data="rdata")]
    out = join("left", a, b)
    rows = [(f["key"], f.get("rdata")) for f in out if f.fields]
    assert rows == [(1, "b1"), (INS, None), (2, "b2")]


def test_ins_discarded_in_inner_join():
    a = [keyed([(1, "a1"), (INS, "ins"), (2, "a2")])]
    b = [keyed([(1, "b1"), (2, "b2")], data="rdata")]
    out = join("inner", a, b)
    keys = [f["key"] for f in out if f.fields]
    assert keys == [1, 2]


def test_item_alignment_across_multiple_items():
    a = [keyed([(1, "x")]), keyed([(7, "y")])]
    b = [keyed([(1, "p")], data="r"), keyed([(7, "q")], data="r")]
    out = join("inner", a, b)
    items = [
        [(f["key"]) for f in item if f.fields]
        for item in _group_items(out)
    ]
    assert items == [[1], [7]]


def test_right_side_drained_after_left_ends():
    a = [keyed([(1, "x")])]
    b = [keyed([(1, "p"), (2, "q"), (3, "r")], data="r")]
    out = join("inner", a, b)
    keys = [f["key"] for f in out if f.fields]
    assert keys == [1]
    # Exactly one boundary closes the item.
    assert sum(1 for f in out if f.last) == 1


def test_left_side_drained_in_left_join_when_right_ends():
    a = [keyed([(5, "x"), (6, "y"), (7, "z")])]
    b = [keyed([(5, "p")], data="r")]
    out = join("left", a, b)
    keys = [f["key"] for f in out if f.fields]
    assert keys == [5, 6, 7]


def test_duplicate_left_keys_each_match():
    # Merge-join semantics with equal heads: pairs match positionally.
    a = [keyed([(1, "x1"), (2, "x2")])]
    b = [keyed([(1, "p"), (2, "q")], data="r")]
    out = join("inner", a, b)
    assert [(f["key"], f["r"]) for f in out if f.fields] == [(1, "p"), (2, "q")]


def test_invalid_mode():
    import pytest

    with pytest.raises(ValueError):
        Joiner("j", mode="cross")


def _group_items(flits):
    items, current = [], []
    for flit in flits:
        current.append(flit)
        if flit.last:
            items.append(current)
            current = []
    return items
