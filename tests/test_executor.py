"""Unit tests for the SQL executor (reference semantics)."""

import pytest

from repro.sql.executor import Executor, SqlError
from repro.tables.schema import Schema
from repro.tables.table import Table


@pytest.fixture
def executor():
    ex = Executor()
    schema = Schema.of(K="uint32", V="int64", G="uint8")
    ex.register_table(
        "T",
        Table.from_columns(schema, K=[1, 2, 3, 4], V=[10, 20, 30, 40], G=[0, 0, 1, 1]),
    )
    return ex


def test_select_star(executor):
    out = executor.query("SELECT * FROM T")
    assert out.num_rows == 4


def test_projection(executor):
    out = executor.query("SELECT V FROM T")
    assert out.schema.names == ("V",)
    assert out.column("V").tolist() == [10, 20, 30, 40]


def test_computed_projection(executor):
    out = executor.query("SELECT V + K AS S FROM T")
    assert out.column("S").tolist() == [11, 22, 33, 44]


def test_where(executor):
    out = executor.query("SELECT K FROM T WHERE V >= 30")
    assert out.column("K").tolist() == [3, 4]


def test_where_with_and_or(executor):
    out = executor.query("SELECT K FROM T WHERE V > 10 AND (K == 2 OR K == 4)")
    assert out.column("K").tolist() == [2, 4]


def test_limit(executor):
    out = executor.query("SELECT K FROM T LIMIT 1, 2")
    assert out.column("K").tolist() == [2, 3]


def test_aggregate_sum_count(executor):
    out = executor.query("SELECT SUM(V), COUNT(*) FROM T")
    row = out.row(0)
    assert row["EXPR0"] == 100
    assert row["EXPR1"] == 4


def test_aggregate_min_max(executor):
    out = executor.query("SELECT MIN(V), MAX(V) FROM T")
    row = out.row(0)
    assert row["EXPR0"] == 10 and row["EXPR1"] == 40


def test_group_by(executor):
    out = executor.query("SELECT G, SUM(V) AS total FROM T GROUP BY G")
    rows = {row["G"]: row["total"] for row in out.rows()}
    assert rows == {0: 30, 1: 70}


def test_inner_join(executor):
    schema = Schema.of(K="uint32", W="int64")
    executor.register_table("U", Table.from_columns(schema, K=[2, 3, 9], W=[200, 300, 900]))
    out = executor.query("SELECT T.V, U.W FROM T INNER JOIN U ON T.K = U.K")
    assert out.column("T__V").tolist() == [20, 30]
    assert out.column("U__W").tolist() == [200, 300]


def test_left_join(executor):
    schema = Schema.of(K="uint32", W="int64")
    executor.register_table("U", Table.from_columns(schema, K=[2], W=[200]))
    out = executor.query("SELECT * FROM T LEFT JOIN U ON T.K = U.K")
    assert out.num_rows == 4
    assert out.column("U__W").tolist() == [0, 200, 0, 0]


def test_variables():
    ex = Executor()
    ex.execute("DECLARE @x int; SET @x = 3 + 4")
    assert ex.variables["x"] == 7


def test_undeclared_variable_rejected(executor):
    with pytest.raises(SqlError):
        executor.query("SELECT K FROM T WHERE V > @nope")


def test_create_table_statement(executor):
    executor.execute("CREATE TABLE Small AS SELECT K FROM T WHERE K <= 2")
    assert executor.tables["Small"].num_rows == 2


def test_insert_into_appends(executor):
    executor.execute("INSERT INTO Out SELECT COUNT(*) FROM T")
    executor.execute("INSERT INTO Out SELECT COUNT(*) FROM T")
    assert executor.tables["Out"].num_rows == 2


def test_for_loop_row_bindings(executor):
    executor.execute(
        "FOR Row IN T: INSERT INTO Out SELECT SUM(V == Row.V) FROM T; END LOOP;"
    )
    out = executor.tables["Out"]
    assert out.num_rows == 4
    assert all(v == 1 for v in out.column(out.schema.names[0]).tolist())


def test_partition_provider():
    ex = Executor()
    schema = Schema.of(K="uint32")
    ex.register_partitioned(
        "P", lambda pid: Table.from_columns(schema, K=[pid, pid + 1])
    )
    ex.set_variable("pid", 10)
    out = ex.query("SELECT * FROM P PARTITION (@pid)")
    assert out.column("K").tolist() == [10, 11]


def test_partition_on_unpartitioned_table(executor):
    with pytest.raises(SqlError):
        executor.query("SELECT * FROM T PARTITION (@x)")


def test_unknown_table(executor):
    with pytest.raises(SqlError):
        executor.query("SELECT * FROM Nope")


def test_custom_module(executor):
    calls = []
    executor.register_custom_module(
        "MyOp", lambda ex, **kw: calls.append(kw)
    )
    executor.set_variable("a", 5)
    executor.execute("EXEC MyOp InputStream1 = @a")
    assert calls == [{"InputStream1": 5}]


def test_unknown_custom_module(executor):
    with pytest.raises(SqlError):
        executor.execute("EXEC Missing X = 1")


def test_pos_explode_query():
    ex = Executor()
    schema = Schema.of(POS="uint32", SEQ="uint8[]")
    ex.register_table(
        "R", Table.from_columns(schema, POS=[100], SEQ=[[7, 8, 9]])
    )
    out = ex.query("PosExplode (R.SEQ, R.POS) FROM R")
    assert out.column("POS").tolist() == [100, 101, 102]
    assert out.column("SEQ").tolist() == [7, 8, 9]
