"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatk.metadata import recover_reference
from repro.genomics.cigar import Cigar, CigarElement, decode_elements, encode_elements
from repro.genomics.read import AlignedRead
from repro.genomics.reference import Chromosome, ReferenceGenome
from repro.genomics.sequences import (
    decode_sequence,
    encode_sequence,
    reverse_complement,
)
from repro.hw.flit import item_flits, split_items
from repro.tables.genomic_tables import reads_to_table, table_to_reads
from repro.tables.partition import partition_reads

# -- strategies ---------------------------------------------------------------

base_strings = st.text(alphabet="ACGT", min_size=0, max_size=80)


@st.composite
def cigars(draw, max_elements=6):
    """Canonical CIGARs: optional clips at the ends, alternating ops,
    starting and ending the body with M."""
    body_ops = []
    n = draw(st.integers(1, max_elements))
    previous = None
    for i in range(n):
        choices = [op for op in "MID" if op != previous]
        if i == 0 or i == n - 1:
            choices = ["M"]
            if previous == "M":
                break
        op = draw(st.sampled_from(choices))
        body_ops.append(op)
        previous = op
    elements = []
    if draw(st.booleans()):
        elements.append(CigarElement(draw(st.integers(1, 5)), "S"))
    for op in body_ops:
        elements.append(CigarElement(draw(st.integers(1, 10)), op))
    if draw(st.booleans()):
        elements.append(CigarElement(draw(st.integers(1, 5)), "S"))
    return Cigar(elements)


@st.composite
def reads_with_genomes(draw):
    cigar = draw(cigars())
    read_len = cigar.read_length()
    ref_len = cigar.reference_length()
    pos = draw(st.integers(0, 50))
    genome_len = pos + ref_len + 10
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)
    genome = ReferenceGenome([
        Chromosome(1, rng.integers(0, 4, genome_len).astype(np.uint8),
                   np.zeros(genome_len, dtype=bool))
    ])
    read = AlignedRead(
        name="p",
        chrom=1,
        pos=pos,
        cigar=cigar,
        seq=rng.integers(0, 4, read_len).astype(np.uint8),
        qual=rng.integers(2, 42, read_len).astype(np.uint8),
        flags=0,
    )
    return read, genome


# -- sequence properties ---------------------------------------------------------


@given(base_strings)
def test_sequence_roundtrip(text):
    assert decode_sequence(encode_sequence(text)) == text


@given(base_strings)
def test_reverse_complement_involution(text):
    seq = encode_sequence(text)
    assert np.array_equal(reverse_complement(reverse_complement(seq)), seq)


# -- CIGAR properties ---------------------------------------------------------------


@given(cigars())
def test_cigar_string_roundtrip(cigar):
    assert Cigar.parse(str(cigar)) == cigar


@given(cigars())
def test_cigar_encode_roundtrip(cigar):
    assert decode_elements(encode_elements(cigar)) == cigar


@given(cigars(), st.integers(0, 1000))
def test_walk_consumes_exactly_read_and_ref(cigar, pos):
    steps = list(cigar.walk(pos))
    read_consumed = sum(1 for op, _, _ in steps if op in ("M", "I"))
    ref_consumed = sum(1 for op, _, _ in steps if op in ("M", "D"))
    clip = cigar.leading_soft_clip() + cigar.trailing_soft_clip()
    assert read_consumed == cigar.read_length() - clip
    assert ref_consumed == cigar.reference_length()
    ref_positions = [p for op, p, _ in steps if op != "I"]
    assert ref_positions == list(range(pos, pos + ref_consumed))


# -- MD-tag property -----------------------------------------------------------------


@given(reads_with_genomes())
@settings(max_examples=60)
def test_md_recovers_reference_property(read_and_genome):
    """For ANY read/reference, the MD tag reconstructs the aligned
    reference bases (Section IV-C)."""
    read, genome = read_and_genome
    from repro.gatk.metadata import compute_read_metadata

    meta = compute_read_metadata(read, genome)
    recovered = recover_reference(read, meta.md)
    expected = "".join(
        decode_sequence([genome[1].seq[p]])
        for op, p, _ in read.cigar.walk(read.pos)
        if op in ("M", "D")
    )
    assert recovered == expected


@given(reads_with_genomes())
@settings(max_examples=60)
def test_nm_bounds_property(read_and_genome):
    """0 <= NM <= aligned+inserted+deleted bases; UQ <= quality sum."""
    read, genome = read_and_genome
    from repro.gatk.metadata import compute_read_metadata

    meta = compute_read_metadata(read, genome)
    max_nm = sum(e.length for e in read.cigar if e.op in "MID")
    assert 0 <= meta.nm <= max_nm
    assert 0 <= meta.uq <= read.quality_sum()


# -- tables properties ------------------------------------------------------------------


@given(st.lists(reads_with_genomes(), min_size=1, max_size=6))
@settings(max_examples=30)
def test_reads_table_roundtrip_property(pairs):
    reads = [read for read, _ in pairs]
    back = table_to_reads(reads_to_table(reads))
    for original, roundtrip in zip(reads, back):
        assert roundtrip.pos == original.pos
        assert roundtrip.cigar == original.cigar
        assert np.array_equal(roundtrip.seq, original.seq)


@given(st.lists(reads_with_genomes(), min_size=1, max_size=8),
       st.integers(10, 200))
@settings(max_examples=30)
def test_partitioning_complete_and_disjoint_property(pairs, psize):
    reads = [read for read, _ in pairs]
    table = reads_to_table(reads)
    parts = partition_reads(table, psize)
    rowids = []
    for pid, part in parts:
        rowids.extend(part.column("ROWID").tolist())
        for pos in part.column("POS").tolist():
            assert pos // psize == pid.segment
    assert sorted(rowids) == list(range(len(reads)))


# -- flit framing property ---------------------------------------------------------------


@given(st.lists(st.lists(st.integers(0, 100), max_size=10), min_size=1, max_size=8))
def test_item_framing_roundtrip(items):
    flits = [flit for item in items for flit in item_flits(item)]
    groups = split_items(flits)
    recovered = [
        [flit["value"] for flit in group if "value" in flit]
        for group in groups
    ]
    assert recovered == items


# -- hardware-vs-software property -----------------------------------------------------------


@given(st.lists(st.lists(st.integers(0, 60), max_size=20), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_quality_sum_pipeline_property(quals):
    """The Figure 10 pipeline equals a plain software sum for any input."""
    from repro.accel.markdup import run_quality_sums

    result = run_quality_sums(quals)
    assert result.quality_sums == [sum(item) for item in quals]
