"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gatk.metadata import recover_reference
from repro.genomics.cigar import Cigar, CigarElement, decode_elements, encode_elements
from repro.genomics.read import AlignedRead
from repro.genomics.reference import Chromosome, ReferenceGenome
from repro.genomics.sequences import (
    decode_sequence,
    encode_sequence,
    reverse_complement,
)
from repro.hw.flit import item_flits, split_items
from repro.tables.genomic_tables import reads_to_table, table_to_reads
from repro.tables.partition import partition_reads

# -- strategies ---------------------------------------------------------------

base_strings = st.text(alphabet="ACGT", min_size=0, max_size=80)


@st.composite
def cigars(draw, max_elements=6):
    """Canonical CIGARs: optional clips at the ends, alternating ops,
    starting and ending the body with M."""
    body_ops = []
    n = draw(st.integers(1, max_elements))
    previous = None
    for i in range(n):
        choices = [op for op in "MID" if op != previous]
        if i == 0 or i == n - 1:
            choices = ["M"]
            if previous == "M":
                break
        op = draw(st.sampled_from(choices))
        body_ops.append(op)
        previous = op
    elements = []
    if draw(st.booleans()):
        elements.append(CigarElement(draw(st.integers(1, 5)), "S"))
    for op in body_ops:
        elements.append(CigarElement(draw(st.integers(1, 10)), op))
    if draw(st.booleans()):
        elements.append(CigarElement(draw(st.integers(1, 5)), "S"))
    return Cigar(elements)


@st.composite
def reads_with_genomes(draw):
    cigar = draw(cigars())
    read_len = cigar.read_length()
    ref_len = cigar.reference_length()
    pos = draw(st.integers(0, 50))
    genome_len = pos + ref_len + 10
    rng_seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(rng_seed)
    genome = ReferenceGenome([
        Chromosome(1, rng.integers(0, 4, genome_len).astype(np.uint8),
                   np.zeros(genome_len, dtype=bool))
    ])
    read = AlignedRead(
        name="p",
        chrom=1,
        pos=pos,
        cigar=cigar,
        seq=rng.integers(0, 4, read_len).astype(np.uint8),
        qual=rng.integers(2, 42, read_len).astype(np.uint8),
        flags=0,
    )
    return read, genome


# -- sequence properties ---------------------------------------------------------


@given(base_strings)
def test_sequence_roundtrip(text):
    assert decode_sequence(encode_sequence(text)) == text


@given(base_strings)
def test_reverse_complement_involution(text):
    seq = encode_sequence(text)
    assert np.array_equal(reverse_complement(reverse_complement(seq)), seq)


# -- CIGAR properties ---------------------------------------------------------------


@given(cigars())
def test_cigar_string_roundtrip(cigar):
    assert Cigar.parse(str(cigar)) == cigar


@given(cigars())
def test_cigar_encode_roundtrip(cigar):
    assert decode_elements(encode_elements(cigar)) == cigar


@given(cigars(), st.integers(0, 1000))
def test_walk_consumes_exactly_read_and_ref(cigar, pos):
    steps = list(cigar.walk(pos))
    read_consumed = sum(1 for op, _, _ in steps if op in ("M", "I"))
    ref_consumed = sum(1 for op, _, _ in steps if op in ("M", "D"))
    clip = cigar.leading_soft_clip() + cigar.trailing_soft_clip()
    assert read_consumed == cigar.read_length() - clip
    assert ref_consumed == cigar.reference_length()
    ref_positions = [p for op, p, _ in steps if op != "I"]
    assert ref_positions == list(range(pos, pos + ref_consumed))


# -- MD-tag property -----------------------------------------------------------------


@given(reads_with_genomes())
@settings(max_examples=60)
def test_md_recovers_reference_property(read_and_genome):
    """For ANY read/reference, the MD tag reconstructs the aligned
    reference bases (Section IV-C)."""
    read, genome = read_and_genome
    from repro.gatk.metadata import compute_read_metadata

    meta = compute_read_metadata(read, genome)
    recovered = recover_reference(read, meta.md)
    expected = "".join(
        decode_sequence([genome[1].seq[p]])
        for op, p, _ in read.cigar.walk(read.pos)
        if op in ("M", "D")
    )
    assert recovered == expected


@given(reads_with_genomes())
@settings(max_examples=60)
def test_nm_bounds_property(read_and_genome):
    """0 <= NM <= aligned+inserted+deleted bases; UQ <= quality sum."""
    read, genome = read_and_genome
    from repro.gatk.metadata import compute_read_metadata

    meta = compute_read_metadata(read, genome)
    max_nm = sum(e.length for e in read.cigar if e.op in "MID")
    assert 0 <= meta.nm <= max_nm
    assert 0 <= meta.uq <= read.quality_sum()


# -- tables properties ------------------------------------------------------------------


@given(st.lists(reads_with_genomes(), min_size=1, max_size=6))
@settings(max_examples=30)
def test_reads_table_roundtrip_property(pairs):
    reads = [read for read, _ in pairs]
    back = table_to_reads(reads_to_table(reads))
    for original, roundtrip in zip(reads, back):
        assert roundtrip.pos == original.pos
        assert roundtrip.cigar == original.cigar
        assert np.array_equal(roundtrip.seq, original.seq)


@given(st.lists(reads_with_genomes(), min_size=1, max_size=8),
       st.integers(10, 200))
@settings(max_examples=30)
def test_partitioning_complete_and_disjoint_property(pairs, psize):
    reads = [read for read, _ in pairs]
    table = reads_to_table(reads)
    parts = partition_reads(table, psize)
    rowids = []
    for pid, part in parts:
        rowids.extend(part.column("ROWID").tolist())
        for pos in part.column("POS").tolist():
            assert pos // psize == pid.segment
    assert sorted(rowids) == list(range(len(reads)))


# -- flit framing property ---------------------------------------------------------------


@given(st.lists(st.lists(st.integers(0, 100), max_size=10), min_size=1, max_size=8))
def test_item_framing_roundtrip(items):
    flits = [flit for item in items for flit in item_flits(item)]
    groups = split_items(flits)
    recovered = [
        [flit["value"] for flit in group if "value" in flit]
        for group in groups
    ]
    assert recovered == items


# -- hardware-vs-software property -----------------------------------------------------------


@given(st.lists(st.lists(st.integers(0, 60), max_size=20), min_size=1, max_size=6))
@settings(max_examples=20, deadline=None)
def test_quality_sum_pipeline_property(quals):
    """The Figure 10 pipeline equals a plain software sum for any input."""
    from repro.accel.markdup import run_quality_sums

    result = run_quality_sums(quals)
    assert result.quality_sums == [sum(item) for item in quals]


# -- joiner vs merge-join oracle -----------------------------------------------------


@st.composite
def keyed_items(draw, max_items=4, max_keys=5):
    """Per-item sorted key/value streams for both joiner sides.  Merge
    joins require strictly increasing keys within an item, so keys are
    drawn as sets and sorted."""
    n = draw(st.integers(1, max_items))
    items = []
    for _ in range(n):
        sides = []
        for _side in ("a", "b"):
            keys = sorted(draw(st.sets(st.integers(0, 12), max_size=max_keys)))
            sides.append([(k, draw(st.integers(0, 99))) for k in keys])
        items.append(tuple(sides))
    return items


def _join_oracle(a_item, b_item, mode):
    """Two-pointer sorted merge join over one item, per join mode."""
    out = []
    i = j = 0
    while i < len(a_item) and j < len(b_item):
        (ka, va), (kb, vb) = a_item[i], b_item[j]
        if ka == kb:
            out.append({"key": ka, "av": va, "bv": vb})
            i += 1
            j += 1
        elif ka < kb:
            if mode in ("left", "outer"):
                out.append({"key": ka, "av": va})
            i += 1
        else:
            if mode == "outer":
                out.append({"key": kb, "bv": vb})
            j += 1
    for ka, va in a_item[i:]:
        if mode in ("left", "outer"):
            out.append({"key": ka, "av": va})
    for kb, vb in b_item[j:]:
        if mode == "outer":
            out.append({"key": kb, "bv": vb})
    return out


def _side_flits(item, value_field):
    from repro.hw.flit import Flit

    if not item:
        return [Flit({}, last=True)]
    flits = [Flit({"key": k, value_field: v}) for k, v in item]
    flits[-1].last = True
    return flits


def _grouped_fields(flits):
    """Group output flits into items of field dicts using the last bits."""
    items, current = [], []
    for flit in flits:
        if flit.fields:
            current.append(dict(flit.fields))
        if flit.last:
            items.append(current)
            current = []
    return items


@given(keyed_items(), st.sampled_from(["inner", "left", "outer"]))
@settings(max_examples=40, deadline=None)
def test_joiner_matches_merge_join_oracle(items, mode):
    """The hardware Joiner equals a software two-pointer merge join for
    every mode, on any sorted keyed streams (including empty items)."""
    from repro.hw.modules import Joiner

    from hw_harness import drive

    flits_a = [f for a_item, _ in items for f in _side_flits(a_item, "av")]
    flits_b = [f for _, b_item in items for f in _side_flits(b_item, "bv")]
    joiner = Joiner("join", mode=mode)
    outputs, _stats = drive(joiner, {"a": flits_a, "b": flits_b})
    got = _grouped_fields(outputs["out"])
    want = [_join_oracle(a_item, b_item, mode) for a_item, b_item in items]
    assert got == want


@given(keyed_items(max_items=3))
@settings(max_examples=25, deadline=None)
def test_joiner_inner_discards_every_unmatched_flit(items):
    """Inner joins account for every input flit: matched pairs come out
    merged, everything else lands in ``discarded`` (boundary flits of a
    finished side are drained into it too)."""
    from repro.hw.modules import Joiner

    from hw_harness import drive

    flits_a = [f for a_item, _ in items for f in _side_flits(a_item, "av")]
    flits_b = [f for _, b_item in items for f in _side_flits(b_item, "bv")]
    joiner = Joiner("join", mode="inner")
    outputs, _stats = drive(joiner, {"a": flits_a, "b": flits_b})
    matched = sum(len(flit.fields) > 0 for flit in outputs["out"])
    assert matched == sum(
        len(_join_oracle(a, b, "inner")) for a, b in items
    )
    # every unmatched data flit is discarded; drained boundary flits may
    # add at most two more per item
    unmatched = sum(len(a) + len(b) for a, b in items) - 2 * matched
    assert unmatched <= joiner.discarded <= unmatched + 2 * len(items)


# -- reducer vs software oracle ------------------------------------------------------


@st.composite
def masked_items(draw, max_items=5, max_values=8):
    n = draw(st.integers(1, max_items))
    return [
        draw(
            st.lists(
                st.tuples(st.integers(-50, 50), st.booleans()),
                max_size=max_values,
            )
        )
        for _ in range(n)
    ]


def _reduce_oracle(values, op):
    if op == "sum":
        return sum(values)
    if op == "count":
        return len(values)
    if not values:  # max/min of an empty selection reduce to 0
        return 0
    return max(values) if op == "max" else min(values)


@given(masked_items(), st.sampled_from(["sum", "count", "max", "min"]),
       st.booleans())
@settings(max_examples=40, deadline=None)
def test_reducer_matches_software_oracle(items, op, use_mask):
    """The hardware Reducer equals the software reduction for every op,
    with and without a mask field, on any per-item value stream."""
    from repro.hw.flit import Flit
    from repro.hw.modules import Reducer

    from hw_harness import drive, items_of

    flits = []
    for item in items:
        if not item:
            flits.append(Flit({}, last=True))
            continue
        batch = [Flit({"value": v, "m": int(m)}) for v, m in item]
        batch[-1].last = True
        flits.extend(batch)
    reducer = Reducer("red", op=op, mask_field="m" if use_mask else None)
    outputs, _stats = drive(reducer, {"in": flits})
    got = [vals[0] for vals in items_of(outputs["out"])]
    want = []
    for item in items:
        selected = [v for v, m in item if m or not use_mask]
        want.append(_reduce_oracle(selected, op))
    assert got == want


# -- engine event/dense equivalence --------------------------------------------------


@st.composite
def pipeline_specs(draw):
    """A randomly composed two/three-module pipeline: items for the
    source, a stack of one or two middle modules, and a queue capacity."""
    items = draw(
        st.lists(
            st.lists(st.integers(0, 50), max_size=6), min_size=1, max_size=4
        )
    )
    middles = draw(
        st.lists(
            st.one_of(
                st.tuples(st.just("reduce"),
                          st.sampled_from(["sum", "count", "max", "min"])),
                st.tuples(st.just("alu"), st.integers(-5, 5)),
                st.tuples(st.just("filter"), st.integers(0, 40)),
            ),
            min_size=0,
            max_size=2,
        )
    )
    capacity = draw(st.integers(1, 4))
    return items, middles, capacity


def _build_spec_pipeline(spec):
    from repro.hw.engine import Engine
    from repro.hw.modules import Filter, Reducer, StreamAlu

    from hw_harness import ListSink, ListSource

    items, middles, capacity = spec
    engine = Engine()
    flits = [flit for item in items for flit in item_flits(item)]
    chain = [engine.add_module(ListSource("src", flits))]
    for i, (kind, arg) in enumerate(middles):
        if kind == "reduce":
            module = Reducer(f"mid{i}", op=arg)
        elif kind == "alu":
            module = StreamAlu(f"mid{i}", "ADD", constant=arg)
        else:
            module = Filter(f"mid{i}", field="value", op=">=", constant=arg)
        chain.append(engine.add_module(module))
    sink = engine.add_module(ListSink("sink"))
    chain.append(sink)
    for upstream, downstream in zip(chain, chain[1:]):
        engine.connect(upstream, downstream, capacity=capacity)
    return engine, sink


@given(pipeline_specs())
@settings(max_examples=40, deadline=None)
def test_engine_modes_equivalent_on_random_pipelines(spec):
    """Event (activity-driven) and dense (tick-everything) schedules
    report identical cycle counts and identical outputs on any randomly
    composed pipeline — the core soundness claim of the fast path."""
    results = {}
    for mode in ("event", "dense"):
        engine, sink = _build_spec_pipeline(spec)
        stats = engine.run(mode=mode)
        results[mode] = (
            stats.cycles,
            [(dict(flit.fields), flit.last) for flit in sink.collected],
        )
    assert results["event"] == results["dense"]
