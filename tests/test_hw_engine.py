"""Unit tests for the simulation engine, pipelines, and resources."""

import pytest

from repro.hw.engine import Engine
from repro.hw.flit import Flit, item_flits
from repro.hw.modules import MemoryWriter, Reducer
from repro.hw.pipeline import Pipeline, replicate
from repro.hw.resources import (
    SHELL_COST,
    ResourceVector,
    estimate_accelerator,
    estimate_pipeline,
)

from hw_harness import ListSink, ListSource


def test_flits_advance_one_hop_per_cycle():
    """A flit traverses a 3-module chain in ~3 cycles, not 1 (registered
    queue semantics)."""
    engine = Engine()
    source = engine.add_module(ListSource("src", [Flit({"value": 1}, last=True)]))
    middle = engine.add_module(Reducer("mid", op="sum"))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, middle)
    engine.connect(middle, sink)
    engine.step()  # source pushes
    assert not sink.collected
    engine.step()  # reducer consumes + emits
    assert not sink.collected
    engine.step()  # sink consumes
    assert len(sink.collected) == 1


def test_run_reaches_quiescence():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits([1, 2, 3])))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, sink)
    stats = engine.run()
    assert len(sink.collected) == 3
    assert stats.cycles < 20


def test_run_detects_deadlock():
    engine = Engine()

    class Stuck(ListSource):
        def is_idle(self):
            return False

        def tick(self, cycle):
            pass

    engine.add_module(Stuck("stuck", []))
    with pytest.raises(RuntimeError):
        engine.run(max_cycles=100)


def test_stats_collection():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits([1, 2])))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, sink)
    stats = engine.run()
    assert stats.flits_by_module["src"] == 2
    assert stats.throughput(2) > 0


def test_back_pressure_stalls_producer():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(50)))))

    class SlowSink(ListSink):
        def tick(self, cycle):
            if cycle % 4 == 0:  # consumes once every 4 cycles
                super().tick(cycle)

    sink = engine.add_module(SlowSink("sink"))
    engine.connect(source, sink, capacity=2)
    stats = engine.run()
    assert len(sink.collected) == 50
    assert source.stall_cycles > 0
    assert stats.cycles > 150


def test_pipeline_census():
    engine = Engine()
    pipe = Pipeline("p", engine)
    pipe.add(Reducer("r1", op="sum"))
    pipe.add(Reducer("r2", op="sum"))
    pipe.add(MemoryWriter("w", engine.memory))
    assert pipe.module_census() == {"Reducer": 2, "MemoryWriter": 1}


def test_pipeline_duplicate_module_rejected():
    engine = Engine()
    pipe = Pipeline("p", engine)
    pipe.add(Reducer("r", op="sum"))
    with pytest.raises(ValueError):
        pipe.add(Reducer("r", op="sum"))


def test_replicate():
    engine = Engine()

    def build(eng, name):
        pipe = Pipeline(name, eng)
        pipe.add(Reducer(f"{name}.r", op="sum"))
        return pipe

    replicas = replicate(engine, 4, build)
    assert replicas.n == 4
    assert len(engine.modules) == 4


def test_replicate_validation():
    with pytest.raises(ValueError):
        replicate(Engine(), 0, lambda e, n: Pipeline(n, e))


def test_resource_vector_arithmetic():
    a = ResourceVector(10, 20, 30)
    b = ResourceVector(1, 2, 3)
    assert (a + b).luts == 11
    assert a.scaled(2).registers == 40
    assert 0 < a.utilization()["luts"] < 1e-3


def test_estimate_pipeline_includes_spm():
    base = estimate_pipeline({"Reducer": 1})
    with_spm = estimate_pipeline({"Reducer": 1}, spm_bytes=[1024])
    assert with_spm.bram_bytes == base.bram_bytes + 1024


def test_estimate_unknown_module_rejected():
    with pytest.raises(KeyError):
        estimate_pipeline({"FluxCapacitor": 1})


def test_estimate_accelerator_adds_shell_once():
    one = estimate_accelerator({"Reducer": 1}, [], 1)
    two = estimate_accelerator({"Reducer": 1}, [], 2)
    pipeline_cost = two.luts - one.luts
    assert one.luts == SHELL_COST.luts + pipeline_cost


def test_reducer_lanes_increase_cost():
    narrow = estimate_pipeline({"Reducer": 1}, reducer_lanes=1)
    wide = estimate_pipeline({"Reducer": 1}, reducer_lanes=64)
    assert wide.luts > narrow.luts
    with pytest.raises(ValueError):
        estimate_pipeline({"Reducer": 1}, reducer_lanes=0)


# -- event/dense differential tests ------------------------------------------------
#
# The activity-driven scheduler must be indistinguishable from the dense
# loop on everything the paper measures: cycle counts, flit counts, busy
# cycles, memory traffic, and functional outputs.  Executed-tick metrics
# (starve tallies, ticks_executed) legitimately differ — that difference
# is the scheduler's win and is covered by the RunStats tests instead.


def _force_mode(monkeypatch, mode):
    monkeypatch.setattr(Engine, "default_mode", mode)


def _assert_runs_equivalent(dense_stats, event_stats):
    assert dense_stats.cycles == event_stats.cycles
    assert dense_stats.flits_by_module == event_stats.flits_by_module
    assert dense_stats.busy_by_module == event_stats.busy_by_module
    assert dense_stats.memory_bytes == event_stats.memory_bytes
    assert dense_stats.memory_requests == event_stats.memory_requests


def test_example_query_identical_across_modes(workload, monkeypatch):
    from repro.accel.example_query import run_example_query

    pid, part = next((p, t) for p, t in workload.partitions if t.num_rows > 0)
    ref_row = workload.reference.lookup(pid)
    _force_mode(monkeypatch, "dense")
    dense = run_example_query(part, ref_row)
    _force_mode(monkeypatch, "event")
    event = run_example_query(part, ref_row)
    assert dense.counts == event.counts
    _assert_runs_equivalent(dense.run.stats, event.run.stats)


def test_markdup_identical_across_modes(workload, monkeypatch):
    from repro.accel.markdup import run_quality_sums_table

    pid, part = next((p, t) for p, t in workload.partitions if t.num_rows > 0)
    _force_mode(monkeypatch, "dense")
    dense = run_quality_sums_table(part)
    _force_mode(monkeypatch, "event")
    event = run_quality_sums_table(part)
    assert dense.quality_sums == event.quality_sums
    _assert_runs_equivalent(dense.stats, event.stats)


def test_metadata_identical_across_modes(workload, monkeypatch):
    from repro.accel.metadata import run_metadata_update

    checked = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        ref_row = workload.reference.lookup(pid)
        _force_mode(monkeypatch, "dense")
        dense = run_metadata_update(part, ref_row)
        _force_mode(monkeypatch, "event")
        event = run_metadata_update(part, ref_row)
        assert (dense.nm, dense.md, dense.uq) == (event.nm, event.md, event.uq)
        _assert_runs_equivalent(dense.run.stats, event.run.stats)
        checked += 1
    assert checked > 0


def test_bqsr_identical_across_modes(workload, monkeypatch):
    import numpy as np

    from repro.accel.bqsr import run_bqsr_partition

    pid, part = next(
        (p, t) for p, t in workload.group_partitions if t.num_rows > 0
    )
    ref_row = workload.reference.lookup(pid)
    _force_mode(monkeypatch, "dense")
    dense = run_bqsr_partition(part, ref_row, workload.read_length)
    _force_mode(monkeypatch, "event")
    event = run_bqsr_partition(part, ref_row, workload.read_length)
    for field in ("total_cycle", "total_context", "error_cycle", "error_context"):
        assert np.array_equal(getattr(dense, field), getattr(event, field))
    assert dense.hazard_stalls == event.hazard_stalls
    _assert_runs_equivalent(dense.run.stats, event.run.stats)


def test_metadata_parallel_identical_across_modes(workload):
    from repro.accel.scheduler import run_metadata_parallel

    runs = {}
    for mode in ("dense", "event"):
        results, stats = run_metadata_parallel(
            workload.partitions, workload.reference, n_pipelines=4, mode=mode
        )
        runs[mode] = (results, stats)
    dense_results, dense_stats = runs["dense"]
    event_results, event_stats = runs["event"]
    assert dense_stats.per_wave_cycles == event_stats.per_wave_cycles
    assert dense_stats.total_flits == event_stats.total_flits
    assert set(dense_results) == set(event_results)
    for pid in dense_results:
        assert dense_results[pid].nm == event_results[pid].nm
        assert dense_results[pid].md == event_results[pid].md
        assert dense_results[pid].uq == event_results[pid].uq


def test_event_mode_fast_forwards_memory_latency():
    """A single reader on a high-latency memory: the event engine must
    skip the dead cycles in clock jumps yet land on the dense cycle
    count."""
    from repro.hw.memory import MemoryConfig, MemorySystem
    from repro.hw.modules import MemoryReader

    def build():
        engine = Engine(MemorySystem(MemoryConfig(latency_cycles=250)))
        reader = engine.add_module(MemoryReader("r", engine.memory, elem_size=1))
        sink = engine.add_module(ListSink("s"))
        engine.connect(reader, sink)
        reader.set_items([list(range(40))])
        return engine, sink

    engine_d, sink_d = build()
    dense = engine_d.run(mode="dense")
    engine_e, sink_e = build()
    event = engine_e.run(mode="event")
    assert dense.cycles == event.cycles
    assert [f.fields for f in sink_d.collected] == [f.fields for f in sink_e.collected]
    assert event.fast_forward_cycles > 0
    assert event.ticks_executed < dense.ticks_executed


def test_run_stats_host_metrics():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(20)))))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, sink)
    stats = engine.run(mode="event")
    assert stats.mode == "event"
    assert stats.wall_seconds > 0
    assert 0 < stats.ticks_executed <= stats.ticks_possible
    assert 0.0 <= stats.skip_ratio < 1.0
    assert stats.host_flits_per_second(20) > 0
    dense = Engine()
    src2 = dense.add_module(ListSource("src", item_flits(list(range(20)))))
    sink2 = dense.add_module(ListSink("sink"))
    dense.connect(src2, sink2)
    dstats = dense.run(mode="dense")
    assert dstats.mode == "dense"
    assert dstats.skip_ratio == 0.0
    assert dstats.ticks_executed == dstats.ticks_possible


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        Engine().run(mode="quantum")


def test_deadlock_report_names_the_stuck_parts():
    """On overflow the error must say which modules and queues are stuck,
    not just 'deadlock'."""
    engine = Engine()

    class Stuck(ListSource):
        def is_idle(self):
            return False

        def tick(self, cycle):
            self._note_stalled(self.output())

    stuck = engine.add_module(Stuck("jammed", []))
    sink = engine.add_module(ListSink("sink"))
    queue = engine.connect(stuck, sink, capacity=2)
    queue.push(Flit({}))
    queue.push(Flit({}))
    queue.commit()
    sink.tick = lambda cycle: None  # sink never consumes
    with pytest.raises(RuntimeError) as err:
        engine.run(max_cycles=50, mode="dense")
    message = str(err.value)
    assert "jammed" in message
    assert "FULL" in message
    assert "full_stalls" in message


def test_event_deadlock_detected_without_spinning():
    """The event engine spots a stuck-but-non-idle module the moment the
    wake set drains, long before max_cycles."""
    engine = Engine()

    class Wedged(ListSource):
        """Claims pending work but never produces and never wants a tick."""

        def is_idle(self):
            return False

        def wants_tick(self):
            return False

        def tick(self, cycle):
            pass

    engine.add_module(Wedged("wedged", []))
    with pytest.raises(RuntimeError) as err:
        engine.run(max_cycles=100_000_000, mode="event")
    assert "wedged" in str(err.value)


def test_remove_module_keeps_scheduler_consistent():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits([1, 2])))
    middle = engine.add_module(Reducer("mid", op="sum"))
    sink = engine.add_module(ListSink("sink"))
    q1 = engine.connect(source, middle)
    engine.connect(middle, sink)
    engine.remove_module(middle)
    assert [m._index for m in engine.modules] == [0, 1]
    assert middle not in q1.consumers
