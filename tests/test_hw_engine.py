"""Unit tests for the simulation engine, pipelines, and resources."""

import pytest

from repro.hw.engine import Engine
from repro.hw.flit import Flit, item_flits
from repro.hw.modules import MemoryWriter, Reducer
from repro.hw.pipeline import Pipeline, replicate
from repro.hw.resources import (
    SHELL_COST,
    VU9P_LUTS,
    ResourceVector,
    estimate_accelerator,
    estimate_pipeline,
)

from hw_harness import ListSink, ListSource


def test_flits_advance_one_hop_per_cycle():
    """A flit traverses a 3-module chain in ~3 cycles, not 1 (registered
    queue semantics)."""
    engine = Engine()
    source = engine.add_module(ListSource("src", [Flit({"value": 1}, last=True)]))
    middle = engine.add_module(Reducer("mid", op="sum"))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, middle)
    engine.connect(middle, sink)
    engine.step()  # source pushes
    assert not sink.collected
    engine.step()  # reducer consumes + emits
    assert not sink.collected
    engine.step()  # sink consumes
    assert len(sink.collected) == 1


def test_run_reaches_quiescence():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits([1, 2, 3])))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, sink)
    stats = engine.run()
    assert len(sink.collected) == 3
    assert stats.cycles < 20


def test_run_detects_deadlock():
    engine = Engine()

    class Stuck(ListSource):
        def is_idle(self):
            return False

        def tick(self, cycle):
            pass

    engine.add_module(Stuck("stuck", []))
    with pytest.raises(RuntimeError):
        engine.run(max_cycles=100)


def test_stats_collection():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits([1, 2])))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, sink)
    stats = engine.run()
    assert stats.flits_by_module["src"] == 2
    assert stats.throughput(2) > 0


def test_back_pressure_stalls_producer():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(50)))))

    class SlowSink(ListSink):
        def tick(self, cycle):
            if cycle % 4 == 0:  # consumes once every 4 cycles
                super().tick(cycle)

    sink = engine.add_module(SlowSink("sink"))
    engine.connect(source, sink, capacity=2)
    stats = engine.run()
    assert len(sink.collected) == 50
    assert source.stall_cycles > 0
    assert stats.cycles > 150


def test_pipeline_census():
    engine = Engine()
    pipe = Pipeline("p", engine)
    pipe.add(Reducer("r1", op="sum"))
    pipe.add(Reducer("r2", op="sum"))
    pipe.add(MemoryWriter("w", engine.memory))
    assert pipe.module_census() == {"Reducer": 2, "MemoryWriter": 1}


def test_pipeline_duplicate_module_rejected():
    engine = Engine()
    pipe = Pipeline("p", engine)
    pipe.add(Reducer("r", op="sum"))
    with pytest.raises(ValueError):
        pipe.add(Reducer("r", op="sum"))


def test_replicate():
    engine = Engine()

    def build(eng, name):
        pipe = Pipeline(name, eng)
        pipe.add(Reducer(f"{name}.r", op="sum"))
        return pipe

    replicas = replicate(engine, 4, build)
    assert replicas.n == 4
    assert len(engine.modules) == 4


def test_replicate_validation():
    with pytest.raises(ValueError):
        replicate(Engine(), 0, lambda e, n: Pipeline(n, e))


def test_resource_vector_arithmetic():
    a = ResourceVector(10, 20, 30)
    b = ResourceVector(1, 2, 3)
    assert (a + b).luts == 11
    assert a.scaled(2).registers == 40
    assert 0 < a.utilization()["luts"] < 1e-3


def test_estimate_pipeline_includes_spm():
    base = estimate_pipeline({"Reducer": 1})
    with_spm = estimate_pipeline({"Reducer": 1}, spm_bytes=[1024])
    assert with_spm.bram_bytes == base.bram_bytes + 1024


def test_estimate_unknown_module_rejected():
    with pytest.raises(KeyError):
        estimate_pipeline({"FluxCapacitor": 1})


def test_estimate_accelerator_adds_shell_once():
    one = estimate_accelerator({"Reducer": 1}, [], 1)
    two = estimate_accelerator({"Reducer": 1}, [], 2)
    pipeline_cost = two.luts - one.luts
    assert one.luts == SHELL_COST.luts + pipeline_cost


def test_reducer_lanes_increase_cost():
    narrow = estimate_pipeline({"Reducer": 1}, reducer_lanes=1)
    wide = estimate_pipeline({"Reducer": 1}, reducer_lanes=64)
    assert wide.luts > narrow.luts
    with pytest.raises(ValueError):
        estimate_pipeline({"Reducer": 1}, reducer_lanes=0)
