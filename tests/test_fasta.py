"""Tests for FASTA/FASTQ I/O."""

import io

import numpy as np
import pytest

from repro.genomics.fasta import (
    fastq_stats,
    read_fasta,
    read_fastq,
    write_fasta,
    write_fastq,
)
from repro.genomics.reference import ReferenceGenome


def test_fasta_roundtrip(two_chrom_genome):
    buffer = io.StringIO()
    count = write_fasta(buffer, two_chrom_genome)
    assert count == 2
    buffer.seek(0)
    back = read_fasta(buffer)
    assert back.chromosomes == two_chrom_genome.chromosomes
    for chrom in back.chromosomes:
        assert np.array_equal(back[chrom].seq, two_chrom_genome[chrom].seq)


def test_fasta_line_wrapping(small_genome):
    buffer = io.StringIO()
    write_fasta(buffer, small_genome)
    for line in buffer.getvalue().splitlines():
        assert len(line) <= 70


def test_fasta_chromosome_names():
    genome = ReferenceGenome.random({23: 100, 24: 100}, seed=1)
    buffer = io.StringIO()
    write_fasta(buffer, genome)
    text = buffer.getvalue()
    assert ">chrX" in text and ">chrY" in text
    buffer.seek(0)
    assert read_fasta(buffer).chromosomes == [23, 24]


def test_fasta_synthetic_snp_bitmap(small_genome):
    buffer = io.StringIO()
    write_fasta(buffer, small_genome)
    buffer.seek(0)
    back = read_fasta(buffer, snp_rate=0.05, seed=3)
    rate = back[1].is_snp.mean()
    assert 0.02 < rate < 0.09


def test_fastq_roundtrip(small_reads):
    buffer = io.StringIO()
    count = write_fastq(buffer, small_reads)
    assert count == len(small_reads)
    buffer.seek(0)
    records = read_fastq(buffer)
    assert len(records) == len(small_reads)
    for read, (name, seq, qual) in zip(small_reads, records):
        assert name == read.name
        assert np.array_equal(seq, read.seq)
        assert np.array_equal(qual, read.qual)


def test_fastq_malformed():
    with pytest.raises(ValueError):
        read_fastq(io.StringIO("@r1\nACGT\n+\n"))  # not a multiple of 4
    with pytest.raises(ValueError):
        read_fastq(io.StringIO("r1\nACGT\n+\n!!!!\n"))  # missing @
    with pytest.raises(ValueError):
        read_fastq(io.StringIO("@r1\nACGT\n+\n!!!\n"))  # length mismatch


def test_fastq_stats(small_reads):
    buffer = io.StringIO()
    write_fastq(buffer, small_reads)
    buffer.seek(0)
    stats = fastq_stats(read_fastq(buffer))
    assert stats["reads"] == len(small_reads)
    assert stats["mean_length"] == pytest.approx(50)
    assert 2 <= stats["mean_quality"] <= 41


def test_fastq_stats_empty():
    assert fastq_stats([])["reads"] == 0
