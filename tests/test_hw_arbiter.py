"""Unit tests for the round-robin arbitration fabric (Figure 8)."""

import pytest

from repro.hw.arbiter import RoundRobinArbiter, TwoLevelArbiter


def test_single_requester():
    arb = RoundRobinArbiter("a", 3)
    assert arb.grant([False, True, False]) == 1


def test_rotating_priority():
    arb = RoundRobinArbiter("a", 3)
    grants = [arb.grant([True, True, True]) for _ in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_no_requesters():
    arb = RoundRobinArbiter("a", 2)
    assert arb.grant([False, False]) is None


def test_fairness_under_contention():
    arb = RoundRobinArbiter("a", 4)
    counts = [0] * 4
    for _ in range(400):
        winner = arb.grant([True] * 4)
        counts[winner] += 1
    assert all(c == 100 for c in counts)


def test_request_line_mismatch():
    arb = RoundRobinArbiter("a", 2)
    with pytest.raises(ValueError):
        arb.grant([True])


def test_requester_count_validation():
    with pytest.raises(ValueError):
        RoundRobinArbiter("a", 0)


def test_two_level_structure():
    fabric = TwoLevelArbiter("f", [2, 3])
    group, member = fabric.grant([[True, False], [False, False, False]])
    assert (group, member) == (0, 0)


def test_two_level_none_when_idle():
    fabric = TwoLevelArbiter("f", [1, 1])
    assert fabric.grant([[False], [False]]) is None


def test_two_level_alternates_groups():
    fabric = TwoLevelArbiter("f", [1, 1])
    winners = [fabric.grant([[True], [True]])[0] for _ in range(4)]
    assert winners == [0, 1, 0, 1]
