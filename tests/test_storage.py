"""Differential tests for the in-storage filtering tier (repro.storage).

Three headline invariants from DESIGN.md §3.10:

* the chunked layout is **lossless**: ``decode_chunk(encode_partition(...))``
  rebuilds every partition bit-identically (dtypes, row order, array rows);
* the pruning engine agrees with an **independent pure-Python oracle**
  (CIGAR decoded through :mod:`repro.genomics.cigar`, bases compared as
  Python lists — none of the filter's vectorized machinery);
* a filtered run is **bit-identical** to the unfiltered run — results AND
  per-stage kernel cycle accounting — across stages x devices x workers,
  faults included.  Only the modelled transfer/SPM-load *time* may shrink.
"""

import json

import numpy as np
import pytest

from repro.accel.scheduler import (
    BqsrWaveDriver,
    MarkdupWaveDriver,
    MetadataWaveDriver,
    run_partitioned,
)
from repro.accel.sharding import MODEL_ROW_BYTES, run_sharded
from repro.eval.workloads import make_workload
from repro.faults.plan import FaultPlan, FaultSpec
from repro.genomics.cigar import decode_elements
from repro.obs.analyze import storage_report_from_ledger, storage_what_if
from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.storage import (
    DESCRIPTOR_BYTES,
    StorageFilterConfig,
    StorageFrontEnd,
    chunk_store_from_partitions,
    decode_chunk,
    decode_store,
    encode_partition,
    exact_match_mask,
    plan_storage_filter,
    storage_wave_nbytes,
)

BQSR_FIELDS = ("total_cycle", "total_context", "error_cycle", "error_context")

DEVICE_GRID = [
    (devices, workers) for devices in (1, 2, 4) for workers in (1, 4)
]


@pytest.fixture(scope="module")
def workload():
    """Same shape as the sharding suite: multi-wave, multi-device."""
    return make_workload(
        n_reads=120,
        read_length=60,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=1000,
        seed=105,
    )


@pytest.fixture(scope="module")
def plan(workload):
    return plan_storage_filter(
        workload.partitions, workload.reference, record=False
    )


@pytest.fixture(scope="module")
def metadata_serial(workload):
    driver = MetadataWaveDriver(reference=workload.reference)
    return run_partitioned(driver, workload.partitions, 2, workers=1)


@pytest.fixture(scope="module")
def markdup_serial(workload):
    driver = MarkdupWaveDriver()
    return run_partitioned(driver, workload.partitions, 1, workers=1)


@pytest.fixture(scope="module")
def bqsr_serial(workload):
    driver = BqsrWaveDriver(
        reference=workload.reference, read_length=workload.read_length
    )
    return run_partitioned(driver, workload.group_partitions, 4, workers=1)


# -- chunk layout round-trip (compressed == raw) ------------------------------------


def _assert_tables_identical(got, want):
    assert got.num_rows == want.num_rows
    for spec in want.schema.columns:
        g, w = got.column(spec.name), want.column(spec.name)
        if spec.is_array:
            assert len(g) == len(w), spec.name
            for row, (a, b) in enumerate(zip(g, w)):
                assert a.dtype == b.dtype, (spec.name, row)
                assert np.array_equal(a, b), (spec.name, row)
        else:
            assert np.asarray(g).dtype == np.asarray(w).dtype, spec.name
            assert np.array_equal(g, w), spec.name


def test_chunk_roundtrip_bit_identical(workload):
    for pid, part in workload.partitions:
        chunk = encode_partition(pid, part)
        assert chunk.num_rows == part.num_rows
        _assert_tables_identical(decode_chunk(chunk), part)


def test_store_roundtrip_and_compression(workload):
    store = chunk_store_from_partitions(workload.partitions)
    assert len(store) == len(list(workload.partitions))
    decoded = dict(decode_store(store))
    for pid, part in workload.partitions:
        assert pid in store
        _assert_tables_identical(decoded[pid], part)
    # Dictionary encoding must actually compress genomic columns
    # (2-bit bases, narrow quality ranges).
    assert store.encoded_nbytes < store.payload_nbytes
    assert store.compression_ratio() > 1.5


def test_empty_partition_roundtrip(workload):
    from repro.tables.genomic_tables import READS_SCHEMA
    from repro.tables.table import Table

    pid, _part = next(iter(workload.partitions))
    chunk = encode_partition(pid, Table.empty(READS_SCHEMA))
    decoded = decode_chunk(chunk)
    assert decoded.num_rows == 0
    assert chunk.encoded_nbytes > 0  # headers still charged


# -- pruning engine vs a pure-Python oracle -----------------------------------------


def _oracle_mask(part, ref_row):
    """Independent reimplementation of the exact-match predicate: CIGAR
    decoded through the genomics layer, bases compared as Python lists."""
    kept = [False] * part.num_rows
    if ref_row is None:
        return kept
    ref = list(ref_row["SEQ"])
    start = int(ref_row["REFPOS"])
    for row in range(part.num_rows):
        cigar = decode_elements(part.column("CIGAR")[row])
        seq = list(part.column("SEQ")[row])
        if len(cigar.elements) != 1:
            continue
        element = cigar.elements[0]
        if element.op != "M" or element.length != len(seq):
            continue
        offset = int(part.column("POS")[row]) - start
        if offset < 0 or offset + len(seq) > len(ref):
            continue
        kept[row] = ref[offset:offset + len(seq)] == seq
    return kept


def test_exact_match_mask_agrees_with_oracle(workload):
    total = pruned = 0
    for pid, part in workload.partitions:
        ref_row = (
            workload.reference.lookup(pid)
            if pid in workload.reference else None
        )
        mask = exact_match_mask(part, ref_row)
        assert mask.tolist() == _oracle_mask(part, ref_row), str(pid)
        total += part.num_rows
        pruned += int(mask.sum())
    # The simulator's defaults leave most reads exactly matching —
    # the GenStore premise the whole tier is built on.
    assert pruned > total / 2


def test_exact_match_mask_without_reference(workload):
    _pid, part = next(iter(workload.partitions))
    assert not exact_match_mask(part, None).any()


def test_plan_survivor_accounting(workload, plan):
    rows = sum(part.num_rows for _pid, part in workload.partitions)
    assert plan.rows == rows
    assert 0.0 < plan.filtered_fraction < 1.0
    assert plan.raw_nbytes == rows * MODEL_ROW_BYTES
    expected = (
        (plan.rows - plan.pruned_rows) * MODEL_ROW_BYTES
        + plan.pruned_rows * DESCRIPTOR_BYTES
    )
    assert plan.survivor_nbytes == expected
    assert plan.saved_nbytes == plan.raw_nbytes - plan.survivor_nbytes
    assert plan.scan_seconds > 0
    assert plan.compression_ratio > 1.0
    assert "pruned in-SSD" in plan.describe()


def test_plan_is_deterministic(workload, plan):
    again = plan_storage_filter(
        workload.partitions, workload.reference, record=False
    )
    assert again.verdicts == plan.verdicts


def test_wave_nbytes_unknown_pid_ships_full(workload, plan):
    items = list(workload.partitions)[:2]
    known = plan.wave_nbytes(items)
    assert known < plan.wave_raw_nbytes(items)
    # An unplanned partition (not in any verdict) ships at full footprint.
    pid, part = items[0]
    foreign = (("unplanned", 0, 0), part)
    assert plan.wave_nbytes([foreign]) == part.num_rows * MODEL_ROW_BYTES
    assert storage_wave_nbytes(None, items, default=123) == 123
    assert storage_wave_nbytes(plan, items, default=123) == known


def test_config_validation():
    with pytest.raises(ValueError):
        StorageFilterConfig(internal_bandwidth=0)
    with pytest.raises(ValueError):
        StorageFilterConfig(descriptor_bytes=-1)
    with pytest.raises(ValueError):
        StorageFilterConfig(descriptor_bytes=MODEL_ROW_BYTES)


# -- filtered == unfiltered: stages x devices x workers ------------------------------


def _assert_same_cycles(serial_stats, stats):
    """Kernel-side accounting must be filter-invariant (the filter only
    touches the transfer path)."""
    assert stats.waves == serial_stats.waves
    assert stats.per_wave_cycles == serial_stats.per_wave_cycles
    assert stats.total_cycles == serial_stats.total_cycles
    assert stats.spm_load_cycles == serial_stats.spm_load_cycles
    assert stats.cycles_including_load == serial_stats.cycles_including_load
    assert stats.total_flits == serial_stats.total_flits


def _assert_metadata_identical(serial_res, got):
    assert set(got) == set(serial_res)
    for pid in serial_res:
        assert got[pid].nm == serial_res[pid].nm, str(pid)
        assert got[pid].md == serial_res[pid].md, str(pid)
        assert got[pid].uq == serial_res[pid].uq, str(pid)


@pytest.mark.parametrize("devices,workers", DEVICE_GRID)
def test_metadata_filtered_bit_identical(
    workload, plan, metadata_serial, devices, workers
):
    serial_res, serial_stats = metadata_serial
    driver = MetadataWaveDriver(reference=workload.reference)
    filtered_res, stats = run_sharded(
        driver, workload.partitions, 2,
        devices=devices, workers=workers, storage=plan,
    )
    assert serial_stats.waves > 1, "need a multi-wave schedule to compare"
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, filtered_res)


@pytest.mark.parametrize("devices,workers", DEVICE_GRID)
def test_markdup_filtered_bit_identical(
    workload, plan, markdup_serial, devices, workers
):
    serial_res, serial_stats = markdup_serial
    driver = MarkdupWaveDriver()
    filtered_res, stats = run_sharded(
        driver, workload.partitions, 1,
        devices=devices, workers=workers, storage=plan,
    )
    _assert_same_cycles(serial_stats, stats)
    assert set(filtered_res) == set(serial_res)
    for pid in serial_res:
        assert filtered_res[pid].quality_sums == serial_res[pid].quality_sums


@pytest.mark.parametrize("devices,workers", DEVICE_GRID)
def test_bqsr_filtered_bit_identical(
    workload, bqsr_serial, devices, workers
):
    serial_res, serial_stats = bqsr_serial
    # BQSR shards by read group; plan over the matching partitions.
    group_plan = plan_storage_filter(
        workload.group_partitions, workload.reference, record=False
    )
    driver = BqsrWaveDriver(
        reference=workload.reference, read_length=workload.read_length
    )
    filtered_res, stats = run_sharded(
        driver, workload.group_partitions, 4,
        devices=devices, workers=workers, storage=group_plan,
    )
    _assert_same_cycles(serial_stats, stats)
    assert set(filtered_res) == set(serial_res)
    for pid in serial_res:
        for field in BQSR_FIELDS:
            assert np.array_equal(
                getattr(filtered_res[pid], field),
                getattr(serial_res[pid], field),
            ), (str(pid), field)


@pytest.mark.parametrize("devices", (1, 2, 4))
def test_filtered_transfer_time_shrinks(workload, plan, devices):
    """The whole point: survivor-path H2D time strictly below raw."""
    driver = MetadataWaveDriver(reference=workload.reference)
    _res, unfiltered = run_sharded(
        driver, workload.partitions, 2, devices=devices
    )
    _res, filtered = run_sharded(
        driver, workload.partitions, 2, devices=devices, storage=plan
    )
    assert sum(filtered.device_transfer_seconds) < sum(
        unfiltered.device_transfer_seconds
    ) or devices == 1  # unsharded baseline models no transfers at all
    if devices == 1:
        assert sum(filtered.device_transfer_seconds) > 0


def test_filtered_bit_identical_under_faults(workload, plan, metadata_serial):
    """Fault retries must re-charge the same survivor footprint — the
    retry ladder converges to the serial answer with the filter on."""
    serial_res, serial_stats = metadata_serial
    driver = MetadataWaveDriver(reference=workload.reference)
    fault_plan = FaultPlan(
        seed=7, specs=(FaultSpec("worker_crash", count=2, at=(0, 1)),)
    )
    filtered_res, stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=2,
        fault_plan=fault_plan, storage=plan,
    )
    assert stats.faults_injected == 2
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, filtered_res)


# -- the runtime front end (DMA charging) -------------------------------------------


def test_frontend_charges_survivor_bytes(workload, plan):
    from repro.runtime import DeviceConfig, GenesisRuntime

    pid, part = max(
        workload.partitions, key=lambda item: plan.verdicts[item[0]].pruned_rows
    )
    verdict = plan.verdicts[pid]
    assert verdict.pruned_rows > 0

    def run(storage):
        runtime = GenesisRuntime(DeviceConfig(), storage=storage)
        runtime.register_pipeline(
            0, lambda inputs: ({"sums": [sum(inputs["QUAL"])]}, 1000)
        )
        if storage is not None:
            with storage.chunk(pid):
                runtime.configure_mem(
                    [1] * verdict.raw_nbytes, 1, verdict.raw_nbytes, "QUAL", 0
                )
        else:
            runtime.configure_mem(
                [1] * verdict.raw_nbytes, 1, verdict.raw_nbytes, "QUAL", 0
            )
        runtime.run_genesis(0)
        runtime.wait_genesis(0)
        return runtime

    frontend = StorageFrontEnd(plan)
    filtered = run(frontend)
    unfiltered = run(None)
    charged = filtered.device.transfers[0].nbytes
    assert charged == verdict.survivor_nbytes
    assert charged < unfiltered.device.transfers[0].nbytes
    assert frontend.saved_nbytes > 0
    # Kernel results and cycle counts are untouched by construction.
    assert filtered.genesis_flush(0) == unfiltered.genesis_flush(0)


def test_frontend_full_charge_outside_chunk(workload, plan):
    frontend = StorageFrontEnd(plan)
    assert frontend.admit_nbytes(1000) == 1000  # no chunk context: raw
    assert frontend.filtered_fraction == plan.filtered_fraction


# -- ledger events and the analyze report -------------------------------------------


def _manifest():
    return RunManifest(workload="test-storage", config={"t": 1})


def test_storage_events_recorded(tmp_path, workload, plan):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    driver = MetadataWaveDriver(reference=workload.reference)
    with run_context(_manifest(), ledger):
        recorded = plan_storage_filter(workload.partitions, workload.reference)
        run_sharded(
            driver, workload.partitions, 2, devices=2, storage=recorded
        )
    plans = ledger.events("storage.plan")
    assert len(plans) == 1
    assert plans[0]["pruned_rows"] == plan.pruned_rows
    waves = ledger.events("storage.wave")
    assert waves
    assert sum(w["nbytes"] for w in waves) == plan.survivor_nbytes
    assert sum(w["raw_nbytes"] for w in waves) == plan.raw_nbytes
    runs = ledger.events("storage.run")
    assert len(runs) == 1
    assert runs[0]["saved_nbytes"] == plan.saved_nbytes
    assert runs[0]["devices"] == 2


def test_run_partitioned_annotates_waves(tmp_path, workload, plan):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    driver = MetadataWaveDriver(reference=workload.reference)
    with run_context(_manifest(), ledger):
        run_partitioned(driver, workload.partitions, 2, storage=plan)
    waves = ledger.events("storage.wave")
    assert waves
    assert sum(w["pruned_rows"] for w in waves) == plan.pruned_rows


def test_storage_report_renders(tmp_path, workload, plan):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    driver = MetadataWaveDriver(reference=workload.reference)
    with run_context(_manifest(), ledger):
        run_sharded(
            driver, workload.partitions, 2, devices=2, storage=plan
        )
    report = storage_report_from_ledger(ledger)
    assert report.stage == "metadata"
    assert report.devices == 2
    assert report.pruned_rows == plan.pruned_rows
    assert report.what_ifs
    text = report.render()
    assert "storage analysis: metadata" in text
    assert "what-if" in text


def test_storage_report_requires_events(tmp_path):
    ledger = RunLedger(str(tmp_path / "empty.jsonl"))
    with pytest.raises(ValueError, match="no storage.run events"):
        storage_report_from_ledger(ledger)


def test_storage_report_refuses_unversioned_records(tmp_path):
    """Satellite: analyze must refuse (not traceback) on pre-schema
    ledgers — records missing ``schema_version`` entirely."""
    path = tmp_path / "old.jsonl"
    record = {
        "run_id": "r1", "event": "storage.run", "stage": "metadata",
        "devices": 2, "filtered_fraction": 0.5,
    }
    path.write_text(json.dumps(record) + "\n")
    with pytest.raises(ValueError, match="schema_version"):
        storage_report_from_ledger(RunLedger(str(path)))


def test_storage_what_if_shape():
    what_ifs = storage_what_if(kernel_seconds=1.0, transfer_seconds=1.0)
    # fractions x generations, all finite speedups >= ~1 for pcie3.
    assert len(what_ifs) == 10
    by_module = {w.module: w for w in what_ifs}
    base = by_module["storage f=0.00 pcie3"]
    assert base.speedup_bound == pytest.approx(1.0)
    deep = by_module["storage f=0.95 pcie4"]
    assert deep.speedup_bound > by_module["storage f=0.95 pcie3"].speedup_bound
    assert deep.speedup_bound < 2.0  # Amdahl: kernel half is untouched


# -- serve integration --------------------------------------------------------------


def test_serve_filtered_bit_identical(workload):
    from repro.serve import JobService, JobSpec
    from repro.serve.trace import SERVE_STAGES, stage_driver, stage_partitions

    serve_plan = plan_storage_filter(
        list(workload.partitions) + list(workload.group_partitions),
        workload.reference, record=False,
    )

    def run(storage):
        service = JobService(devices=2, workers=1, storage=storage)
        for index in range(4):
            stage = SERVE_STAGES[index % len(SERVE_STAGES)]
            service.schedule(
                JobSpec(
                    tenant=f"t{index % 2}",
                    driver=stage_driver(stage, workload),
                    partitions=stage_partitions(stage, workload),
                    n_pipelines=2,
                ),
                at_cycles=index * 1000,
            )
        summary = service.run_until_idle()
        results = {
            status.job_id: service.results(status.job_id)
            for status in service.jobs()
        }
        stages = {status.job_id: status.stage for status in service.jobs()}
        return results, stages, summary

    filtered, stages, f_summary = run(serve_plan)
    unfiltered, _stages, u_summary = run(None)
    assert set(filtered) == set(unfiltered)
    for job_id in unfiltered:
        got, want = filtered[job_id], unfiltered[job_id]
        assert set(got) == set(want)
        for pid in want:
            stage = stages[job_id]
            if stage == "markdup":
                assert got[pid].quality_sums == want[pid].quality_sums
            elif stage == "metadata":
                assert got[pid].nm == want[pid].nm
                assert got[pid].md == want[pid].md
                assert got[pid].uq == want[pid].uq
            else:
                for field in BQSR_FIELDS:
                    assert np.array_equal(
                        getattr(got[pid], field), getattr(want[pid], field)
                    )
    # Filtered transfers finish sooner on the virtual clock.
    assert sum(f_summary.device_transfer_seconds) < sum(
        u_summary.device_transfer_seconds
    )
    assert f_summary.clock_cycles <= u_summary.clock_cycles


def test_serve_drain_resume_keeps_storage(workload):
    from repro.serve import JobService, JobSpec
    from repro.serve.trace import stage_driver, stage_partitions

    serve_plan = plan_storage_filter(
        workload.partitions, workload.reference, record=False
    )

    def build():
        service = JobService(devices=2, workers=1, storage=serve_plan)
        for index in range(3):
            service.schedule(
                JobSpec(
                    tenant=f"t{index}",
                    driver=stage_driver("metadata", workload),
                    partitions=stage_partitions("metadata", workload),
                    n_pipelines=2,
                ),
                at_cycles=index * 1000,
            )
        return service

    undisturbed = build()
    u_summary = undisturbed.run_until_idle()
    want = {
        status.job_id: undisturbed.results(status.job_id)
        for status in undisturbed.jobs()
    }

    service = build()
    service.run(max_dispatches=2)
    checkpoint = service.drain()
    assert checkpoint.storage is serve_plan
    resumed = JobService.resume(checkpoint)
    assert resumed.storage is serve_plan
    summary = resumed.run_until_idle()
    assert summary.jobs_completed == 3
    got = {
        status.job_id: resumed.results(status.job_id)
        for status in resumed.jobs()
    }
    assert set(got) == set(want)
    for job_id in want:
        for pid in want[job_id]:
            assert got[job_id][pid].nm == want[job_id][pid].nm
    # Resumed run keeps charging survivor bytes, not raw.
    assert sum(summary.device_transfer_seconds) <= sum(
        u_summary.device_transfer_seconds
    ) * 1.01
