"""Unit tests for the variant substrate (records, callsets, VCF)."""

import io

import pytest

from repro.variants import CallSet, Variant, read_vcf, snv, write_vcf


def v(chrom=1, pos=10, ref="A", alt="C", **kwargs):
    return Variant(chrom=chrom, pos=pos, ref=ref, alt=alt, **kwargs)


def test_variant_classification():
    assert v(ref="A", alt="C").is_snv
    assert v(ref="A", alt="ACG").is_insertion
    assert v(ref="ACG", alt="A").is_deletion


def test_variant_validation():
    with pytest.raises(ValueError):
        v(ref="")
    with pytest.raises(ValueError):
        v(genotype="2/2")


def test_allele_fraction():
    assert v(depth=10, alt_depth=4).allele_fraction == pytest.approx(0.4)
    assert v(depth=0).allele_fraction == 0.0


def test_snv_constructor():
    variant = snv(2, 99, 0, 3)
    assert variant.ref == "A" and variant.alt == "T"


def test_callset_sorted_iteration():
    callset = CallSet([v(pos=30), v(pos=10), v(chrom=2, pos=5), v(pos=20)])
    keys = [(x.chrom, x.pos) for x in callset]
    assert keys == sorted(keys)


def test_callset_add_keeps_order():
    callset = CallSet([v(pos=20)])
    callset.add(v(pos=5))
    assert [x.pos for x in callset] == [5, 20]


def test_intersect_and_subtract():
    a = CallSet([v(pos=1), v(pos=2), v(pos=3)], name="a")
    b = CallSet([v(pos=2), v(pos=3, alt="G"), v(pos=9)], name="b")
    inter = a.intersect(b)
    assert [x.pos for x in inter] == [2]  # pos 3 differs in alt allele
    diff = a.subtract(b)
    assert [x.pos for x in diff] == [1, 3]


def test_snv_indel_split():
    calls = CallSet([v(pos=1), v(pos=2, alt="ACG")])
    assert len(calls.snvs()) == 1
    assert len(calls.indels()) == 1


def test_concordance_metrics():
    truth = CallSet([v(pos=1), v(pos=2), v(pos=3), v(pos=4)])
    called = CallSet([v(pos=1), v(pos=2), v(pos=99)])
    metrics = called.concordance(truth)
    assert metrics["precision"] == pytest.approx(2 / 3)
    assert metrics["recall"] == pytest.approx(0.5)
    assert 0 < metrics["f1"] < 1


def test_concordance_empty_sets():
    assert CallSet([]).concordance(CallSet([v()]))["f1"] == 0.0


def test_by_chromosome():
    calls = CallSet([v(chrom=1, pos=1), v(chrom=2, pos=2), v(chrom=1, pos=3)])
    grouped = calls.by_chromosome()
    assert len(grouped[1]) == 2 and len(grouped[2]) == 1


def test_vcf_roundtrip():
    calls = CallSet([
        v(pos=9, qual=31.5, genotype="1/1", depth=20, alt_depth=19),
        v(chrom=23, pos=100, ref="G", alt="GTT", depth=8, alt_depth=4),
    ], name="test")
    buffer = io.StringIO()
    count = write_vcf(buffer, calls)
    assert count == 2
    buffer.seek(0)
    back = read_vcf(buffer, name="back")
    assert back.keys() == calls.keys()
    first = back[0]
    assert first.qual == pytest.approx(31.5)
    assert first.genotype == "1/1"
    assert first.depth == 20 and first.alt_depth == 19


def test_vcf_one_based_positions():
    buffer = io.StringIO()
    write_vcf(buffer, CallSet([v(pos=0)]))
    data_line = buffer.getvalue().splitlines()[-1]
    assert data_line.split("\t")[1] == "1"
