"""Tests for the AWS cost model (Tables II and III)."""

import pytest

from repro.perf.cost import (
    F1_2XLARGE,
    R5_4XLARGE,
    MachineRate,
    cost_reduction,
    performance_per_dollar,
    table3_row,
)


def test_table2_prices():
    assert F1_2XLARGE.per_hour == pytest.approx(1.65)
    assert R5_4XLARGE.compute_per_hour == pytest.approx(1.01)
    assert R5_4XLARGE.storage_per_hour == pytest.approx(0.28)
    assert R5_4XLARGE.per_hour == pytest.approx(1.29)


def test_cost_of_run():
    assert F1_2XLARGE.cost_of(3600) == pytest.approx(1.65)
    assert R5_4XLARGE.cost_of(1800) == pytest.approx(0.645)


def test_metadata_row_matches_table3():
    """Table III: metadata update at 19.25x -> 15.05x cost, 289.59x perf/$."""
    row = table3_row(19.25)
    assert row["cost_reduction"] == pytest.approx(15.05, rel=0.01)
    assert row["performance_per_dollar"] == pytest.approx(289.59, rel=0.02)


def test_bqsr_row_matches_table3():
    row = table3_row(12.59)
    assert row["cost_reduction"] == pytest.approx(9.84, rel=0.01)
    assert row["performance_per_dollar"] == pytest.approx(123.92, rel=0.02)


def test_perf_per_dollar_is_speedup_times_cost_reduction():
    row = table3_row(10.0)
    assert row["performance_per_dollar"] == pytest.approx(
        row["speedup"] * row["cost_reduction"]
    )


def test_cost_reduction_monotonic_in_speedup():
    assert cost_reduction(20) > cost_reduction(10)


def test_invalid_speedup():
    with pytest.raises(ValueError):
        cost_reduction(0)


def test_custom_machine_rates():
    cheap = MachineRate("cheap", 0.5)
    pricey = MachineRate("pricey", 5.0)
    assert cost_reduction(10, baseline=pricey, accelerated=cheap) == pytest.approx(100)
    assert performance_per_dollar(10, baseline=pricey, accelerated=cheap) == (
        pytest.approx(1000)
    )
