"""Unit tests for the Memory Reader and Memory Writer modules."""

import pytest

from repro.hw.engine import Engine
from repro.hw.flit import Flit
from repro.hw.memory import MemoryConfig, MemorySystem
from repro.hw.modules import MemoryReader, MemoryWriter

from hw_harness import ListSink


def run_reader(reader_setup, memory_config=None):
    engine = Engine(MemorySystem(memory_config))
    reader = MemoryReader("r", engine.memory, elem_size=1)
    engine.add_module(reader)
    reader_setup(reader)
    sink = ListSink("s")
    engine.add_module(sink)
    engine.connect(reader, sink)
    stats = engine.run()
    return sink.collected, stats, engine


def test_scalar_stream():
    collected, _, _ = run_reader(lambda r: r.set_scalars([10, 20, 30]))
    assert [f["value"] for f in collected] == [10, 20, 30]
    assert all(f.last for f in collected)


def test_item_stream_framing():
    collected, _, _ = run_reader(lambda r: r.set_items([[1, 2], [3]]))
    lasts = [f.last for f in collected]
    assert lasts == [False, True, True]


def test_empty_item_produces_boundary():
    collected, _, _ = run_reader(lambda r: r.set_items([[], [5]]))
    assert not collected[0].fields and collected[0].last
    assert collected[1]["value"] == 5


def test_memory_traffic_accounted():
    _, stats, engine = run_reader(lambda r: r.set_scalars(list(range(100))))
    # 100 one-byte elements = ceil(100/64) = 2 access lines.
    assert engine.memory.requests_served == 2
    assert stats.memory_bytes == 128


def test_latency_delays_first_flit():
    def setup(reader):
        reader.set_scalars([1])

    _, stats_fast, _ = run_reader(setup, MemoryConfig(latency_cycles=0))
    _, stats_slow, _ = run_reader(setup, MemoryConfig(latency_cycles=50))
    assert stats_slow.cycles > stats_fast.cycles + 40


def test_throughput_one_element_per_cycle():
    collected, stats, _ = run_reader(lambda r: r.set_items([list(range(500))]))
    assert len(collected) == 500
    # Requests pipeline behind the prefetch buffer: ~1 flit/cycle after warmup.
    assert stats.cycles < 600


def test_elem_size_validation():
    engine = Engine()
    with pytest.raises(ValueError):
        MemoryReader("r", engine.memory, elem_size=0)


def test_writer_collects_items():
    engine = Engine()
    writer = MemoryWriter("w", engine.memory, elem_size=4)
    engine.add_module(writer)
    flits = [Flit({"value": 1}), Flit({"value": 2}, last=True), Flit({"value": 3}, last=True)]
    queue = engine.new_queue("in", capacity=16)
    writer.connect_input("in", queue)
    for flit in flits:
        queue.push(flit)
    engine.run()
    assert writer.collected == [1, 2, 3]
    assert writer.items == [[1, 2], [3]]


def test_writer_issues_requests_per_line():
    engine = Engine()
    writer = MemoryWriter("w", engine.memory, elem_size=4)  # 16 elems/64B line
    engine.add_module(writer)
    queue = engine.new_queue("in", capacity=64)
    writer.connect_input("in", queue)
    for i in range(32):
        queue.push(Flit({"value": i}, last=(i == 31)))
    engine.run()
    assert engine.memory.requests_served == 2


def test_writer_skips_boundary_flits():
    engine = Engine()
    writer = MemoryWriter("w", engine.memory)
    engine.add_module(writer)
    queue = engine.new_queue("in")
    writer.connect_input("in", queue)
    queue.push(Flit({}, last=True))
    engine.run()
    assert writer.collected == []
    assert writer.items == [[]]
