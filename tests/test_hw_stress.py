"""Randomized stress tests of the dataflow machinery.

These exercise the property the whole simulator rests on: *functional
results are invariant to timing* — queue capacities, consumer rates, and
memory latencies may change cycle-level behaviour but never outputs.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.engine import Engine
from repro.hw.flit import Flit, item_flits
from repro.hw.memory import MemoryConfig, MemorySystem
from repro.hw.modules import Filter, Fork, Joiner, Reducer, StreamAlu

from hw_harness import ListSink, ListSource, values


class JitterySink(ListSink):
    """A consumer that pops only on a pseudo-random subset of cycles,
    injecting irregular back-pressure."""

    def __init__(self, name, seed, rate=0.5):
        super().__init__(name)
        self._rng = np.random.default_rng(seed)
        self._rate = rate

    def tick(self, cycle):
        if self._rng.random() < self._rate:
            super().tick(cycle)


def run_chain(items, capacity, sink_seed):
    """source -> ALU(+1) -> filter(>2) -> reducer(sum per item) -> sink."""
    engine = Engine(default_queue_capacity=capacity)
    flits = [flit for item in items for flit in item_flits(item)]
    source = engine.add_module(ListSource("src", flits))
    alu = engine.add_module(StreamAlu("alu", op="ADD", field="value", constant=1))
    filt = engine.add_module(Filter("filt", field="value", op=">", constant=2))
    red = engine.add_module(Reducer("red", op="sum", field="value"))
    sink = engine.add_module(JitterySink("sink", sink_seed))
    engine.connect(source, alu)
    engine.connect(alu, filt)
    engine.connect(filt, red)
    engine.connect(red, sink)
    engine.run()
    return values(sink.collected)


def reference_chain(items):
    return [sum(v + 1 for v in item if v + 1 > 2) for item in items]


@given(
    st.lists(st.lists(st.integers(0, 50), max_size=12), min_size=1, max_size=8),
    st.integers(1, 16),
    st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_chain_invariant_to_timing(items, capacity, sink_seed):
    assert run_chain(items, capacity, sink_seed) == reference_chain(items)


def join_reference(a_items, b_items, mode):
    out = []
    for a_item, b_item in zip(a_items, b_items):
        b_map = dict(b_item)
        row = []
        for key, value in a_item:
            if key in b_map:
                row.append((key, value, b_map[key]))
            elif mode == "left":
                row.append((key, value, None))
        out.append(row)
    return out


@st.composite
def keyed_items(draw, n_items):
    items = []
    for _ in range(n_items):
        keys = sorted(draw(st.sets(st.integers(0, 30), max_size=10)))
        items.append([(key, draw(st.integers(0, 9))) for key in keys])
    return items


@given(st.integers(1, 4), st.data(), st.sampled_from(["inner", "left"]),
       st.integers(1, 8))
@settings(max_examples=40, deadline=None)
def test_joiner_invariant_to_timing(n_items, data, mode, capacity):
    a_items = data.draw(keyed_items(n_items))
    b_items = data.draw(keyed_items(n_items))

    def frame(items, field):
        flits = []
        for item in items:
            body = [Flit({"key": k, field: v}) for k, v in item]
            if body:
                body[-1].last = True
            else:
                body = [Flit({}, last=True)]
            flits.extend(body)
        return flits

    engine = Engine(default_queue_capacity=capacity)
    src_a = engine.add_module(ListSource("a", frame(a_items, "va")))
    src_b = engine.add_module(ListSource("b", frame(b_items, "vb")))
    joiner = engine.add_module(Joiner("j", mode=mode, key_a="key", key_b="key"))
    sink = engine.add_module(JitterySink("sink", capacity * 7 + n_items))
    engine.connect(src_a, joiner, in_port="a")
    engine.connect(src_b, joiner, in_port="b")
    engine.connect(joiner, sink)
    engine.run()

    got = []
    current = []
    for flit in sink.collected:
        if flit.fields:
            current.append((flit["key"], flit["va"], flit.get("vb")))
        if flit.last:
            got.append(current)
            current = []
    assert got == join_reference(a_items, b_items, mode)


@given(st.integers(0, 100), st.integers(1, 64), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_memory_latency_never_changes_results(n_values, latency, channels_idx):
    channels = [1, 2, 4, 8][channels_idx]
    from repro.hw.modules import MemoryReader

    engine = Engine(MemorySystem(MemoryConfig(
        channels=channels, latency_cycles=latency,
    )))
    reader = engine.add_module(MemoryReader("r", engine.memory, elem_size=1))
    sink = engine.add_module(ListSink("s"))
    engine.connect(reader, sink)
    payload = list(range(n_values))
    reader.set_items([payload])
    engine.run()
    assert values(sink.collected) == payload


def test_fork_under_asymmetric_consumers():
    """One slow branch must not corrupt the fast branch's data."""
    engine = Engine(default_queue_capacity=2)
    flits = [flit for flit in item_flits(list(range(60)))]
    source = engine.add_module(ListSource("src", flits))
    fork = engine.add_module(Fork("fork", ports=2))
    fast = engine.add_module(ListSink("fast"))
    slow = engine.add_module(JitterySink("slow", seed=5, rate=0.2))
    engine.connect(source, fork)
    engine.connect(fork, fast, out_port="out0")
    engine.connect(fork, slow, out_port="out1")
    engine.run()
    assert values(fast.collected) == list(range(60))
    assert values(slow.collected) == list(range(60))


def _rmw_engine(addresses, capacity, latency):
    from repro.hw.spm import Scratchpad
    from repro.hw.modules.spm_access import SpmUpdater

    engine = Engine(
        MemorySystem(MemoryConfig(latency_cycles=latency)),
        default_queue_capacity=capacity,
    )
    spm = Scratchpad("counts", size=32)
    flits = [Flit({"addr": int(a)}) for a in addresses]
    if flits:
        flits[-1].last = True
    source = engine.add_module(ListSource("src", flits))
    updater = engine.add_module(SpmUpdater("upd", spm, mode="rmw"))
    engine.connect(source, updater)
    return engine, spm, updater


@given(
    st.lists(st.integers(0, 7), min_size=1, max_size=60),
    st.integers(1, 8),
    st.integers(0, 80),
)
@settings(max_examples=40, deadline=None)
def test_rmw_hazard_identical_across_modes(addresses, capacity, latency):
    """The three-stage RMW interlock under repeated-address pressure:
    dense and event schedules must agree on cycles, hazard stalls, and
    the final SPM contents."""
    runs = {}
    for mode in ("dense", "event"):
        engine, spm, updater = _rmw_engine(addresses, capacity, latency)
        stats = engine.run(mode=mode)
        runs[mode] = (stats, spm.dump(), updater.hazard_stalls, updater.updates)
    dense_stats, dense_spm, dense_hazards, dense_updates = runs["dense"]
    event_stats, event_spm, event_hazards, event_updates = runs["event"]
    assert dense_stats.cycles == event_stats.cycles
    assert dense_spm == event_spm
    assert dense_hazards == event_hazards
    assert dense_updates == event_updates
    expected = [0] * 32
    for address in addresses:
        expected[address] += 1
    assert event_spm == expected


class CycleKeyedSink(ListSink):
    """A back-pressuring consumer whose pop/skip decision is a pure
    function of the *cycle number* (not the tick count), so dense and
    event schedules — which tick it a different number of times — see
    the same consumer behaviour on any given cycle."""

    def __init__(self, name, seed, rate=0.5):
        super().__init__(name)
        self._gate = np.random.default_rng(seed).random(4096) < rate

    def tick(self, cycle):
        if self._gate[cycle % len(self._gate)]:
            super().tick(cycle)


@given(
    st.lists(st.lists(st.integers(0, 50), max_size=12), min_size=1, max_size=6),
    st.integers(1, 16),
    st.integers(0, 1000),
)
@settings(max_examples=30, deadline=None)
def test_chain_cycles_identical_across_modes(items, capacity, sink_seed):
    """Irregular back-pressure under both schedules: same cycle count,
    same outputs."""
    runs = {}
    for mode in ("dense", "event"):
        engine = Engine(default_queue_capacity=capacity)
        flits = [flit for item in items for flit in item_flits(item)]
        source = engine.add_module(ListSource("src", flits))
        alu = engine.add_module(StreamAlu("alu", op="ADD", field="value", constant=1))
        sink = engine.add_module(CycleKeyedSink("sink", sink_seed))
        engine.connect(source, alu)
        engine.connect(alu, sink)
        stats = engine.run(mode=mode)
        runs[mode] = (stats.cycles, values(sink.collected))
    assert runs["dense"] == runs["event"]
