"""Graceful drain/resume regression tests.

Draining mid-wave must requeue every in-flight wave, the restarted
service must pick the work back up from the checkpoint (with the
drain/resume trail in the ledger), and the merged results must stay
bit-identical to an undisturbed run — faults included.  Latencies may
legitimately differ (a drain delays the requeued waves); output bits
may not.
"""

import pytest

from repro.eval.workloads import make_workload
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.retry import RetryPolicy
from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.serve import COMPLETED, SERVE_FAULT_SITE, JobService, JobSpec
from repro.serve.trace import SERVE_STAGES, stage_driver, stage_partitions


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        n_reads=80,
        read_length=50,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=900,
        seed=105,
    )


def _build(workload, fault_plan=None):
    service = JobService(
        devices=2,
        workers=1,
        fault_plan=fault_plan,
        retry_policy=RetryPolicy(max_retries=3),
    )
    for index in range(4):
        stage = SERVE_STAGES[index % len(SERVE_STAGES)]
        service.schedule(
            JobSpec(
                tenant=f"t{index % 2}",
                driver=stage_driver(stage, workload),
                partitions=stage_partitions(stage, workload),
                n_pipelines=2,
            ),
            at_cycles=index * 1000,
        )
    return service


def _results_by_job(service):
    return {
        status.job_id: service.results(status.job_id)
        for status in service.jobs()
    }


def _assert_identical(stage, got, want):
    import numpy as np

    assert set(got) == set(want)
    for pid in want:
        if stage == "markdup":
            assert got[pid].quality_sums == want[pid].quality_sums
        elif stage == "metadata":
            assert got[pid].nm == want[pid].nm
            assert got[pid].md == want[pid].md
            assert got[pid].uq == want[pid].uq
        else:
            for field in (
                "total_cycle", "total_context", "error_cycle",
                "error_context",
            ):
                assert np.array_equal(
                    getattr(got[pid], field), getattr(want[pid], field)
                )


@pytest.mark.parametrize("drain_after", (1, 3, 5))
def test_drain_resume_bit_identical(workload, drain_after):
    undisturbed = _build(workload)
    undisturbed.run_until_idle()
    want = _results_by_job(undisturbed)

    service = _build(workload)
    service.run(max_dispatches=drain_after)
    checkpoint = service.drain()
    assert not service._inflight  # everything requeued
    resumed = JobService.resume(checkpoint)
    summary = resumed.run_until_idle()
    assert summary.jobs_completed == 4
    stages = {
        status.job_id: status.stage for status in resumed.jobs()
    }
    got = _results_by_job(resumed)
    assert set(got) == set(want)
    for job_id in want:
        _assert_identical(stages[job_id], got[job_id], want[job_id])


def test_drain_requeues_inflight_waves(workload):
    service = _build(workload)
    service.run(max_dispatches=3)
    inflight = {
        (rec.dispatch.job.job_id, rec.dispatch.wave_index)
        for rec in service._inflight.values()
    }
    assert inflight  # the budgeted run left work mid-wave
    pre_drain_done = {
        job_id: service.status(job_id).waves_done
        for job_id, _wave in inflight
    }
    checkpoint = service.drain()
    for job_id, wave_index in inflight:
        job = checkpoint.jobs[job_id]
        assert wave_index in job.pending  # requeued, not completed
        assert job.waves_done == pre_drain_done[job_id]
    resumed = JobService.resume(checkpoint)
    resumed.run_until_idle()
    for job_id, _wave in inflight:
        assert resumed.status(job_id).state == COMPLETED


def test_drain_resume_under_faults(workload):
    plan = FaultPlan(
        seed=11,
        specs=(
            FaultSpec(
                "transfer_error", site=SERVE_FAULT_SITE, count=2, at=(0, 3)
            ),
        ),
    )
    undisturbed = _build(workload, fault_plan=plan)
    undisturbed.run_until_idle()
    want = _results_by_job(undisturbed)

    service = _build(workload, fault_plan=plan)
    service.run(max_dispatches=4)
    checkpoint = service.drain()
    resumed = JobService.resume(checkpoint)
    summary = resumed.run_until_idle()
    assert summary.jobs_completed == 4
    assert summary.faults == {"transfer_error": 2}
    stages = {status.job_id: status.stage for status in resumed.jobs()}
    got = _results_by_job(resumed)
    for job_id in want:
        _assert_identical(stages[job_id], got[job_id], want[job_id])
    # consumed fault slots are not replayed after resume: the total
    # injection count matches the undisturbed run exactly
    assert summary.faults == undisturbed.summary().faults


def test_drain_trail_in_ledger(workload, tmp_path):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    manifest = RunManifest(workload="serve-drain", config={}, seed=0)
    with run_context(manifest, ledger):
        service = _build(workload)
        service.run(max_dispatches=2)
        checkpoint = service.drain()
        resumed = JobService.resume(checkpoint)
        resumed.run_until_idle()
    drains = ledger.events("serve.drain", run_id=manifest.run_id)
    resumes = ledger.events("serve.resume", run_id=manifest.run_id)
    assert len(drains) == 1 and len(resumes) == 1
    assert drains[0]["requeued"] >= 1
    assert resumes[0]["clock"] == drains[0]["clock"]
    done = ledger.events("serve.job.done", run_id=manifest.run_id)
    assert len(done) == 4


def test_drain_idle_service_is_clean(workload):
    service = _build(workload)
    service.run_until_idle()
    checkpoint = service.drain()
    assert checkpoint.open_jobs == 0
    resumed = JobService.resume(checkpoint)
    summary = resumed.run_until_idle()
    assert summary.jobs_completed == 4
