"""Integration tests: the Figure 7 pipeline vs software vs SQL."""

import pytest

from repro.accel.example_query import count_matching_bases_sw, run_example_query
from repro.sql.queries import run_figure4_query


@pytest.fixture(scope="module")
def nonempty_partitions(workload):
    # workload fixture is session-scoped, safe to reuse here.
    return [
        (pid, part) for pid, part in workload.partitions if part.num_rows > 0
    ]


def test_hw_matches_software_on_all_partitions(workload):
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        ref_row = workload.reference.lookup(pid)
        result = run_example_query(part, ref_row)
        assert result.counts == count_matching_bases_sw(part, ref_row), str(pid)


def test_sql_matches_hw(workload):
    pid, part = next(
        (p, t) for p, t in workload.partitions if t.num_rows > 0
    )
    ref_row = workload.reference.lookup(pid)
    hw = run_example_query(part, ref_row).counts
    sql = run_figure4_query(workload.partitions, workload.reference, pid)
    assert sql == hw


def test_counts_bounded_by_read_length(workload):
    pid, part = next((p, t) for p, t in workload.partitions if t.num_rows > 0)
    result = run_example_query(part, workload.reference.lookup(pid))
    for count, seq in zip(result.counts, part.column("SEQ")):
        assert 0 <= count <= len(seq)


def test_cycle_count_near_one_base_per_cycle(workload):
    from repro.tables.genomic_tables import count_bases

    pid, part = max(
        ((p, t) for p, t in workload.partitions), key=lambda x: x[1].num_rows
    )
    result = run_example_query(part, workload.reference.lookup(pid))
    bases = count_bases(part)
    cpb = result.run.stats.cycles / bases
    # "The constructed pipeline is fully-pipelined and can process a
    # single base pair per cycle" (Section III-D).
    assert cpb < 2.0


def test_memory_traffic_scales_with_columns(workload):
    pid, part = max(
        ((p, t) for p, t in workload.partitions), key=lambda x: x[1].num_rows
    )
    result = run_example_query(part, workload.reference.lookup(pid))
    from repro.tables.genomic_tables import table_bytes

    payload = table_bytes(part, ["POS", "ENDPOS", "CIGAR", "SEQ"])
    assert result.run.stats.memory_bytes >= payload
