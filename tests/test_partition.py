"""Unit tests for the partitioning scheme (Section III-B)."""

import pytest

from repro.tables.genomic_tables import reads_to_table
from repro.tables.partition import (
    PartitionId,
    partition_reads,
    partition_reads_by_group,
    partition_reference,
    reference_row_table,
)


def test_partition_id_str():
    assert str(PartitionId(1, 3)) == "chr1:3"
    assert str(PartitionId(2, 0, 5)) == "chr2:0:rg5"


def test_partition_reads_complete_and_disjoint(small_reads):
    table = reads_to_table(small_reads)
    parts = partition_reads(table, psize=1000)
    assert parts.total_rows() == table.num_rows
    seen = set()
    for pid, part in parts:
        for rowid in part.column("ROWID").tolist():
            assert rowid not in seen
            seen.add(rowid)
    assert len(seen) == table.num_rows


def test_partition_reads_respects_intervals(small_reads):
    table = reads_to_table(small_reads)
    parts = partition_reads(table, psize=1000)
    for pid, part in parts:
        for pos in part.column("POS").tolist():
            assert pid.segment * 1000 <= pos < (pid.segment + 1) * 1000
        for chrom in part.column("CHR").tolist():
            assert chrom == pid.chrom


def test_partition_by_group(small_reads):
    table = reads_to_table(small_reads)
    parts = partition_reads_by_group(table, psize=1000)
    assert parts.total_rows() == table.num_rows
    for pid, part in parts:
        assert pid.read_group >= 0
        for group in part.column("RG").tolist():
            assert group == pid.read_group


def test_partition_pids_sorted(small_reads):
    table = reads_to_table(small_reads)
    parts = partition_reads(table, psize=1000)
    pids = parts.pids
    keys = [(p.chrom, p.segment) for p in pids]
    assert keys == sorted(keys)


def test_partition_psize_validation(small_reads):
    table = reads_to_table(small_reads)
    with pytest.raises(ValueError):
        partition_reads(table, psize=0)


def test_reference_partition_lookup(small_genome):
    ref = partition_reference(small_genome, psize=1000, overlap=100)
    assert len(ref) == 5
    row = ref.lookup(PartitionId(1, 2))
    assert row["REFPOS"] == 2000
    assert PartitionId(1, 4) in ref
    assert PartitionId(1, 9) not in ref


def test_read_partition_always_has_reference(small_reads, small_genome):
    table = reads_to_table(small_reads)
    parts = partition_reads(table, psize=750)
    ref = partition_reference(small_genome, psize=750, overlap=80)
    for pid, _part in parts:
        assert pid in ref


def test_reads_fit_in_reference_overlap(small_reads, small_genome):
    """Every read's span must lie inside its partition's reference row —
    the invariant the overlap tail exists for (Section III-B)."""
    table = reads_to_table(small_reads)
    psize, overlap = 800, 80
    parts = partition_reads(table, psize=psize)
    ref = partition_reference(small_genome, psize=psize, overlap=overlap)
    for pid, part in parts:
        row = ref.lookup(pid)
        limit = int(row["REFPOS"]) + len(row["SEQ"])
        for endpos in part.column("ENDPOS").tolist():
            assert endpos < limit


def test_reference_row_table(small_genome):
    ref = partition_reference(small_genome, psize=1000, overlap=50)
    row = ref.lookup(PartitionId(1, 1))
    table = reference_row_table(row)
    assert table.num_rows == 1
    assert table.row(0)["REFPOS"] == 1000
