"""Tests for the fleet trace-context layer (repro.obs.spans) and its
propagation through the job service, the scheduler, and sharded runs."""

import json

import pytest

from repro.obs.spans import (
    NULL_SPANS,
    SpanRecorder,
    TraceSpan,
    active_spans,
    fleet_chrome_trace,
    tenant_colors,
    tracing,
    write_fleet_trace,
)


def _span(name="s", lane="service", start=0, end=10, tenant=None, **kw):
    defaults = dict(
        trace_id="t-1", span_id=1, parent_id=None, name=name, cat="wave",
        start=start, end=end, lane=lane, tenant=tenant,
    )
    defaults.update(kw)
    return TraceSpan(**defaults)


class TestSpanRecorder:
    def test_sequential_ids_and_parenting(self):
        rec = SpanRecorder()
        root = rec.record("job", "job", 0, 100, trace_id="t-1")
        child = rec.record(
            "wave", "wave", 0, 50, trace_id="t-1", parent_id=root
        )
        assert (root, child) == (1, 2)
        assert rec.spans[1].parent_id == root
        assert len(rec) == 2

    def test_reserve_materializes_later(self):
        rec = SpanRecorder()
        reserved = rec.reserve()
        child = rec.record(
            "wave", "wave", 0, 5, trace_id="t-1", parent_id=reserved
        )
        rec.record("job", "job", 0, 9, trace_id="t-1", span_id=reserved)
        assert reserved == 1
        assert child == 2
        assert rec.spans[-1].span_id == reserved

    def test_zero_length_span_is_legal(self):
        rec = SpanRecorder()
        rec.record("drain", "drain", 42, 42, trace_id="service")
        assert rec.spans[0].duration == 0

    def test_negative_span_rejected(self):
        rec = SpanRecorder()
        with pytest.raises(ValueError, match="ends before"):
            rec.record("bad", "wave", 10, 9, trace_id="t-1")

    def test_disabled_recorder_is_inert(self):
        rec = SpanRecorder(enabled=False)
        assert rec.record("x", "wave", 0, 1, trace_id="t") == 0
        assert rec.reserve() == 0
        assert len(rec) == 0

    def test_merge_adopts_spans(self):
        a, b = SpanRecorder(), SpanRecorder()
        a.record("x", "wave", 0, 1, trace_id="t-a")
        b.record("y", "wave", 0, 1, trace_id="t-b")
        a.merge(b)
        assert [s.trace_id for s in a.spans] == ["t-a", "t-b"]

    def test_identical_runs_identical_traces(self):
        def run():
            rec = SpanRecorder()
            root = rec.record("job", "job", 0, 7, trace_id=rec.new_trace("j"))
            rec.record("kernel", "kernel", 0, 7, trace_id="j-1",
                       parent_id=root, lane="device:0")
            return [s.to_dict() for s in rec.spans]

        assert run() == run()


class TestAmbientRecorder:
    def test_defaults_to_null(self):
        assert active_spans() is NULL_SPANS
        assert not active_spans().enabled

    def test_tracing_installs_and_restores(self):
        rec = SpanRecorder()
        with tracing(rec):
            assert active_spans() is rec
            inner = SpanRecorder()
            with tracing(inner):
                assert active_spans() is inner
            assert active_spans() is rec
        assert active_spans() is NULL_SPANS

    def test_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with tracing(SpanRecorder()):
                raise RuntimeError("boom")
        assert active_spans() is NULL_SPANS


class TestFleetChromeTrace:
    def test_lane_ordering_service_device_pcie_sql(self):
        spans = [
            _span(lane="sql"),
            _span(lane="pcie:0"),
            _span(lane="device:1"),
            _span(lane="device:0"),
            _span(lane="service"),
        ]
        doc = fleet_chrome_trace(spans)
        assert doc["otherData"]["lanes"] == [
            "service", "device:0", "device:1", "pcie:0", "sql"
        ]

    def test_process_metadata_per_lane(self):
        doc = fleet_chrome_trace([_span(lane="device:0")])
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["name"]: e for e in meta}
        assert names["process_name"]["args"]["name"] == "device:0"
        assert names["process_sort_index"]["args"]["sort_index"] == 0

    def test_tenant_tracks_and_colors(self):
        spans = [
            _span(tenant="t000"),
            _span(tenant="t001"),
            _span(tenant=None),
        ]
        doc = fleet_chrome_trace(spans)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        colored = {e["args"].get("tenant"): e.get("cname") for e in xs}
        assert colored[None] is None
        assert colored["t000"] != colored["t001"]
        # stable palette: same tenants -> same colors
        assert tenant_colors(spans) == tenant_colors(list(reversed(spans)))
        # the untenanted track renders as "events"
        threads = [
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert "events" in threads and "tenant t000" in threads

    def test_zero_length_span_exports_zero_dur(self):
        doc = fleet_chrome_trace([_span(start=5, end=5)])
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["ts"] == 5 and xs[0]["dur"] == 0

    def test_trace_context_in_args(self):
        doc = fleet_chrome_trace([
            _span(span_id=7, parent_id=3, attrs={"wave": 2})
        ])
        args = [e for e in doc["traceEvents"] if e["ph"] == "X"][0]["args"]
        assert args["span_id"] == 7
        assert args["parent_id"] == 3
        assert args["wave"] == 2

    def test_write_round_trips(self, tmp_path):
        path = tmp_path / "fleet.json"
        write_fleet_trace([_span()], str(path), name="demo")
        doc = json.loads(path.read_text())
        assert doc["otherData"]["name"] == "demo"
        assert doc["otherData"]["spans"] == 1


# -- propagation through the service and the accelerator runs ------------------------


@pytest.fixture(scope="module")
def workload():
    from repro.eval.workloads import make_workload

    return make_workload(
        n_reads=60, read_length=60, chromosomes=(20,),
        genome_scale=4.5e-5, psize=1000, seed=3,
    )


def _served(workload, drain_at=None, spans=None, jobs=6, **kwargs):
    from repro.serve import ArrivalTrace, JobService, trace_jobs

    trace = ArrivalTrace.generate(
        tenants=3, jobs=jobs, seed=1, stages=("markdup", "metadata"),
        mean_gap_cycles=30_000,
    )
    service = JobService(devices=2, workers=1, spans=spans, **kwargs)
    for at_cycles, spec in trace_jobs(trace, workload, n_pipelines=2):
        service.schedule(spec, at_cycles=at_cycles)
    if drain_at is not None:
        from repro.serve import JobService as Service

        service.run(max_dispatches=drain_at)
        checkpoint = service.drain()
        service = Service.resume(checkpoint)
    summary = service.run_until_idle()
    return service, summary


class TestServiceSpans:
    def test_job_roots_cover_arrival_to_completion(self, workload):
        service, summary = _served(workload)
        jobs = [s for s in service.spans.spans if s.cat == "job"]
        assert len(jobs) == summary.jobs_completed
        for job in jobs:
            children = [
                s for s in service.spans.spans
                if s.parent_id == job.span_id
            ]
            assert children, f"job span {job.name} has no children"
            assert all(s.trace_id == job.trace_id for s in children)
            assert all(
                job.start <= s.start and s.end <= job.end for s in children
            )

    def test_wave_children_tile_exactly(self, workload):
        service, _ = _served(workload)
        waves = [s for s in service.spans.spans if s.cat == "wave"]
        assert waves
        for wave in waves:
            parts = sorted(
                (
                    s for s in service.spans.spans
                    if s.parent_id == wave.span_id and s.lane == wave.lane
                ),
                key=lambda s: s.start,
            )
            assert parts[0].start == wave.start
            assert parts[-1].end == wave.end
            for left, right in zip(parts, parts[1:]):
                assert left.end == right.start

    def test_spans_cross_drain_resume_boundary(self, workload):
        service, summary = _served(workload, drain_at=3)
        assert summary.jobs_failed == 0
        drains = [s for s in service.spans.spans if s.name == "drain"]
        resumes = [s for s in service.spans.spans if s.name == "resume"]
        assert len(drains) == 1 and len(resumes) == 1
        boundary = drains[0].start
        assert resumes[0].start == boundary
        aborted = [s for s in service.spans.spans if s.cat == "aborted"]
        for span in aborted:
            # cut at the drain clock, never past it
            assert span.end == boundary
            assert span.attrs["drained"] is True
        # at least one job's root straddles the boundary, and the merged
        # recorder kept every span id unique across the restart
        jobs = [s for s in service.spans.spans if s.cat == "job"]
        assert any(s.start < boundary < s.end for s in jobs)
        ids = [s.span_id for s in service.spans.spans]
        assert len(ids) == len(set(ids))

    def test_fault_markers_are_zero_length_children(self, workload):
        from repro.faults import RetryPolicy
        from repro.faults.plan import FaultPlan, FaultSpec
        from repro.serve import SERVE_FAULT_SITE

        plan = FaultPlan(seed=5, specs=(
            FaultSpec(
                "transfer_error", site=SERVE_FAULT_SITE, count=2, at=(0, 3)
            ),
        ))
        service, summary = _served(
            workload, jobs=8,
            fault_plan=plan,
            retry_policy=RetryPolicy(max_retries=3),
        )
        assert summary.jobs_failed == 0
        assert summary.retries > 0
        faults = [s for s in service.spans.spans if s.cat == "fault"]
        assert faults
        roots = {
            s.span_id for s in service.spans.spans if s.cat == "job"
        }
        for fault in faults:
            assert fault.duration == 0
            assert fault.parent_id in roots

    def test_disabled_spans_record_nothing(self, workload):
        service, summary = _served(
            workload, spans=SpanRecorder(enabled=False)
        )
        assert summary.jobs_completed > 0
        assert len(service.spans) == 0

    def test_mid_run_probe_attach_across_devices(self, workload):
        from repro.serve import ArrivalTrace, JobService, trace_jobs

        trace = ArrivalTrace.generate(
            tenants=3, jobs=6, seed=1, stages=("markdup", "metadata"),
            mean_gap_cycles=30_000,
        )
        service = JobService(
            devices=2, workers=1, spans=SpanRecorder(enabled=False)
        )
        for at_cycles, spec in trace_jobs(trace, workload, n_pipelines=2):
            service.schedule(spec, at_cycles=at_cycles)
        service.run(max_dispatches=4)
        attach_clock = service.clock
        service.spans = SpanRecorder()  # probe attached mid-run
        summary = service.run_until_idle()
        assert summary.jobs_completed > 0
        assert len(service.spans) > 0
        # only post-attach activity is traced, on every active device lane
        waves = [s for s in service.spans.spans if s.cat == "wave"]
        assert waves
        assert all(s.end >= attach_clock for s in waves)
        lanes = {s.lane for s in waves}
        assert len(lanes) >= 2

    def test_fleet_trace_merges_all_lanes(self, workload):
        service, _ = _served(workload, drain_at=3)
        doc = service.fleet_trace(name="served")
        lanes = doc["otherData"]["lanes"]
        assert lanes[0] == "service"
        assert "device:0" in lanes and "device:1" in lanes
        assert doc["otherData"]["tenants"]
        assert doc["otherData"]["name"] == "served"


class TestRunSpans:
    def test_partitioned_run_lays_cumulative_spans(self, workload):
        from repro.accel.scheduler import MetadataWaveDriver, run_partitioned

        rec = SpanRecorder()
        with tracing(rec):
            run_partitioned(
                MetadataWaveDriver(reference=workload.reference),
                workload.partitions, 2,
            )
        runs = [s for s in rec.spans if s.cat == "run"]
        waves = [s for s in rec.spans if s.cat == "wave"]
        assert len(runs) == 1
        assert waves
        assert runs[0].start == 0
        assert runs[0].end == max(s.end for s in waves)
        # waves tile the run without gaps
        ordered = sorted(waves, key=lambda s: s.start)
        assert ordered[0].start == 0
        for left, right in zip(ordered, ordered[1:]):
            assert left.end == right.start
        assert all(s.parent_id == runs[0].span_id for s in waves)

    def test_worker_count_does_not_change_spans(self, workload):
        from repro.accel.scheduler import MetadataWaveDriver, run_partitioned

        def spans_with(workers):
            rec = SpanRecorder()
            with tracing(rec):
                run_partitioned(
                    MetadataWaveDriver(reference=workload.reference),
                    workload.partitions, 2, workers=workers,
                )
            out = []
            for span in rec.spans:
                record = span.to_dict()
                record["attrs"].pop("workers", None)
                out.append(record)
            return out

        assert spans_with(1) == spans_with(2)

    def test_sharded_run_has_device_and_pcie_lanes(self, workload):
        from repro.accel.scheduler import MetadataWaveDriver
        from repro.accel.sharding import run_sharded

        rec = SpanRecorder()
        with tracing(rec):
            _results, stats = run_sharded(
                MetadataWaveDriver(reference=workload.reference),
                workload.partitions, 2, devices=2, workers=1,
            )
        lanes = rec.by_lane()
        busy = [d for d, s in enumerate(stats.per_device) if s.waves]
        for device in busy:
            assert f"device:{device}" in lanes
            assert f"pcie:{device}" in lanes
        for device in busy:
            for span in lanes[f"pcie:{device}"]:
                assert span.cat == "transfer"
                assert span.attrs["nbytes"] > 0

    def test_sql_operators_land_on_sql_lane(self, workload):
        import copy

        from repro.gatk.sql_driver import sql_mark_duplicates

        rec = SpanRecorder()
        with tracing(rec):
            sql_mark_duplicates(copy.deepcopy(workload.reads), backend="fast")
        sql = rec.by_lane().get("sql", [])
        assert sql
        assert all(s.trace_id == "sql" for s in sql)
        assert {"scan", "project"} <= {s.name for s in sql}
        # operators tile the executor's cumulative host-us axis
        ordered = sorted(sql, key=lambda s: s.start)
        for left, right in zip(ordered, ordered[1:]):
            assert right.start >= left.start

    def test_untraced_run_records_nothing(self, workload):
        from repro.accel.scheduler import MetadataWaveDriver, run_partitioned

        assert active_spans() is NULL_SPANS
        run_partitioned(
            MetadataWaveDriver(reference=workload.reference),
            workload.partitions, 2,
        )
        assert len(NULL_SPANS) == 0
