"""Unit tests for the metadata-update software baseline (Section IV-C)."""

import numpy as np

from repro.gatk.metadata import (
    MdBuilder,
    compute_read_metadata,
    compute_read_metadata_fragment,
    recover_reference,
    update_metadata,
)
from repro.genomics.cigar import Cigar
from repro.genomics.read import AlignedRead
from repro.genomics.reference import Chromosome, ReferenceGenome
from repro.genomics.sequences import decode_sequence, encode_sequence


def make_genome(ref_text):
    seq = encode_sequence(ref_text)
    return ReferenceGenome([
        Chromosome(1, seq, np.zeros(len(seq), dtype=bool))
    ])


def make_read(pos, cigar_text, seq_text, qual=None):
    cigar = Cigar.parse(cigar_text)
    seq = encode_sequence(seq_text)
    if qual is None:
        qual = np.full(len(seq), 30, dtype=np.uint8)
    return AlignedRead(name="r", chrom=1, pos=pos, cigar=cigar, seq=seq, qual=qual)


def test_paper_figure2_read1():
    """Reference ACGTAAC CAGTA, Read 1 = AGGTAACACGGTA aligned at 0 with
    7M1I5M: mismatch at offsets 1 and 8 -> NM=3 (incl. insertion),
    MD=1C6A3."""
    genome = make_genome("ACGTAACCAGTA")
    read = make_read(0, "7M1I5M", "AGGTAACACGGTA")
    meta = compute_read_metadata(read, genome)
    assert meta.md == "1C6A3"
    assert meta.nm == 3  # two mismatches + one inserted base
    assert meta.uq == 60  # two mismatching bases at quality 30


def test_perfect_match():
    genome = make_genome("ACGTACGT")
    read = make_read(0, "8M", "ACGTACGT")
    meta = compute_read_metadata(read, genome)
    assert meta.nm == 0
    assert meta.md == "8"
    assert meta.uq == 0


def test_deletion_in_md_and_nm():
    genome = make_genome("ACGTACGT")
    read = make_read(0, "3M2D3M", "ACGCGT")
    meta = compute_read_metadata(read, genome)
    assert meta.md == "3^TA3"
    assert meta.nm == 2


def test_soft_clips_ignored():
    genome = make_genome("ACGTACGT")
    read = make_read(2, "2S4M", "TTGTAC")
    meta = compute_read_metadata(read, genome)
    assert meta.nm == 0
    assert meta.md == "4"


def test_uq_counts_only_aligned_mismatches():
    genome = make_genome("AAAAAAAA")
    qual = np.array([11, 13, 17, 19], dtype=np.uint8)
    # C at offsets 1,2 mismatch; the insertion's quality must NOT count.
    read = make_read(0, "2M1I1M", "ACCA", qual)
    meta = compute_read_metadata(read, genome)
    assert meta.nm == 2  # one mismatch + one insertion
    assert meta.uq == 13  # only the mismatching M base


def test_fragment_variant_matches_whole_genome():
    genome = make_genome("ACGTACGTACGTACGT")
    read = make_read(4, "6M", "ACGTAC")
    whole = compute_read_metadata(read, genome)
    fragment = genome.fetch(1, 2, 14)
    from_fragment = compute_read_metadata_fragment(read, fragment, 2)
    assert whole == from_fragment


def test_update_metadata_attaches_tags(small_reads, small_genome):
    metadata = update_metadata(small_reads, small_genome)
    assert len(metadata) == len(small_reads)
    for read, meta in zip(small_reads, metadata):
        assert read.tags["NM"] == meta.nm
        assert read.tags["MD"] == meta.md
        assert read.tags["UQ"] == meta.uq


def test_md_recovers_reference(small_reads, small_genome):
    """The defining MD property: read + MD reconstructs the aligned
    reference bases (Section IV-C)."""
    update_metadata(small_reads, small_genome)
    for read in small_reads:
        recovered = recover_reference(read, read.tags["MD"])
        expected = "".join(
            decode_sequence([small_genome[read.chrom].seq[p]])
            for op, p, _ in read.cigar.walk(read.pos)
            if op in ("M", "D")
        )
        assert recovered == expected


def test_mdbuilder_zero_runs():
    builder = MdBuilder()
    builder.mismatch(1)
    builder.mismatch(2)
    assert builder.finish() == "0C0G0"
