"""Integration tests: the Figure 11 metadata-update accelerator."""


from repro.accel.metadata import run_metadata_update
from repro.gatk.metadata import compute_read_metadata
from repro.tables.genomic_tables import table_to_reads


def partition_expected(part, genome):
    return [compute_read_metadata(read, genome) for read in table_to_reads(part)]


def test_nm_md_uq_bit_identical(workload):
    """The central correctness claim: the simulated Figure 11 pipeline
    produces exactly the GATK-style NM/MD/UQ on every read."""
    checked = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        ref_row = workload.reference.lookup(pid)
        result = run_metadata_update(part, ref_row)
        expected = partition_expected(part, workload.genome)
        assert result.nm == [m.nm for m in expected], str(pid)
        assert result.md == [m.md for m in expected], str(pid)
        assert result.uq == [m.uq for m in expected], str(pid)
        checked += part.num_rows
    assert checked == workload.n_reads


def test_result_lengths_match_partition(workload):
    pid, part = next((p, t) for p, t in workload.partitions if t.num_rows > 0)
    result = run_metadata_update(part, workload.reference.lookup(pid))
    assert len(result.nm) == part.num_rows
    assert len(result.md) == part.num_rows
    assert len(result.uq) == part.num_rows


def test_spm_load_phase_accounted(workload):
    pid, part = next((p, t) for p, t in workload.partitions if t.num_rows > 0)
    ref_row = workload.reference.lookup(pid)
    result = run_metadata_update(part, ref_row)
    assert result.run.load_stats is not None
    # The SPM load streams the whole reference partition row.
    assert result.run.load_stats.cycles >= len(ref_row["SEQ"])
    assert result.run.total_cycles > result.run.stats.cycles


def test_uq_never_exceeds_quality_sum(workload):
    pid, part = next((p, t) for p, t in workload.partitions if t.num_rows > 0)
    result = run_metadata_update(part, workload.reference.lookup(pid))
    for uq, qual in zip(result.uq, part.column("QUAL")):
        assert 0 <= uq <= int(qual.sum())
