"""The repro.accel.parallel shim must warn and re-export the scheduler
implementations (imported via importlib so the module-level ban on
``repro.accel.parallel`` imports keeps applying to real code)."""

import importlib
import sys
import warnings


def test_parallel_shim_warns_and_reexports():
    sys.modules.pop("repro.accel.parallel", None)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        shim = importlib.import_module("repro.accel.parallel")
    assert any(
        issubclass(w.category, DeprecationWarning)
        and "repro.accel.scheduler" in str(w.message)
        for w in caught
    )
    scheduler = importlib.import_module("repro.accel.scheduler")
    assert shim.run_metadata_parallel is scheduler.run_metadata_parallel
    assert shim.ParallelRunStats is scheduler.ParallelRunStats
    assert shim.SpmImageCache is scheduler.SpmImageCache
    assert shim.WorkerStats is scheduler.WorkerStats


def test_nothing_in_the_package_imports_the_shim():
    # The package itself must be clean even before ruff's TID251 runs.
    sys.modules.pop("repro.accel.parallel", None)
    importlib.import_module("repro.accel")
    importlib.import_module("repro.cli")
    assert "repro.accel.parallel" not in sys.modules
