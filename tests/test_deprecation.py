"""The deprecated ``repro.accel.parallel`` shim was removed after a full
deprecation cycle (warned since PR 4, banned from package code via ruff
TID251 until removal): importing it must now fail loudly, and the
scheduler module it pointed at must keep exporting everything the shim
used to re-export."""

import importlib
import sys

import pytest


def test_parallel_shim_is_gone():
    sys.modules.pop("repro.accel.parallel", None)
    with pytest.raises(ModuleNotFoundError):
        importlib.import_module("repro.accel.parallel")
    assert "repro.accel.parallel" not in sys.modules


def test_scheduler_exports_the_former_shim_surface():
    scheduler = importlib.import_module("repro.accel.scheduler")
    for name in (
        "run_metadata_parallel",
        "ParallelRunStats",
        "SpmImageCache",
        "WorkerStats",
    ):
        assert hasattr(scheduler, name), name
    accel = importlib.import_module("repro.accel")
    for name in ("ParallelRunStats", "SpmImageCache", "run_partitioned"):
        assert hasattr(accel, name), name
