"""Tracer integration with a real accelerator pipeline."""

from repro.accel.common import load_reference_spm, spm_base
from repro.accel.example_query import (
    build_example_pipeline,
    configure_example_streams,
    count_matching_bases_sw,
)
from repro.hw.engine import Engine
from repro.hw.memory import MemorySystem
from repro.hw.trace import Tracer


def test_trace_real_pipeline(workload):
    pid, part = max(
        ((p, t) for p, t in workload.partitions), key=lambda x: x[1].num_rows
    )
    ref_row = workload.reference.lookup(pid)
    spm, _ = load_reference_spm(ref_row)
    engine = Engine(MemorySystem())
    pipe = build_example_pipeline(engine, "tr", spm, spm_base(ref_row))
    configure_example_streams(pipe, part)
    tracer = Tracer(engine, max_cycles=50_000)
    tracer.run_traced()

    # Tracing must not change functional results.
    counts = [int(item[0]) for item in pipe.modules["tr.writer"].items]
    assert counts == count_matching_bases_sw(part, ref_row)

    summary = tracer.summary()
    # The base-granularity modules are the busy ones; the per-read modules
    # (pos/endpos readers, writer) mostly idle.
    assert summary["tr.r2b"]["utilization"] > summary["tr.pos"]["utilization"]
    assert summary["tr.join"]["utilization"] > 0.3
    assert tracer.bottleneck() in summary

    waveform = tracer.render(width=60)
    assert "tr.join" in waveform
    assert "#" in waveform
