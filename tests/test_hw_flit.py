"""Unit tests for flits and stream framing."""

from repro.hw.flit import DEL, INS, Flit, item_flits, scalar_flit, split_items


def test_flit_field_access():
    flit = Flit({"a": 1, "b": 2})
    assert flit["a"] == 1
    assert flit.get("c") is None
    assert "b" in flit
    assert not flit.last


def test_flit_merged():
    flit = Flit({"a": 1}, last=True)
    merged = flit.merged({"b": 2})
    assert merged["a"] == 1 and merged["b"] == 2
    assert merged.last  # inherits unless overridden
    assert not flit.merged({}, last=False).last


def test_sentinels_are_distinct_singletons():
    assert INS is not DEL
    assert repr(INS) == "INS"
    assert repr(DEL) == "DEL"
    assert INS != 0 and DEL != 255


def test_item_flits_framing():
    flits = item_flits([1, 2, 3])
    assert [f["value"] for f in flits] == [1, 2, 3]
    assert [f.last for f in flits] == [False, False, True]


def test_item_flits_empty_item():
    flits = item_flits([])
    assert len(flits) == 1
    assert flits[0].last and not flits[0].fields


def test_scalar_flit():
    flit = scalar_flit(7, field="pos")
    assert flit["pos"] == 7 and flit.last


def test_split_items_roundtrip():
    flits = item_flits([1, 2]) + item_flits([3]) + item_flits([])
    items = split_items(flits)
    assert len(items) == 3
    assert [f["value"] for f in items[0]] == [1, 2]
    assert [f["value"] for f in items[1]] == [3]
    assert items[2][0].fields == {}
