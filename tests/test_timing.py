"""Tests for the accelerated-stage timing model (Figure 13)."""

import pytest

from repro.perf.cpu_model import PAPER_READS
from repro.perf.timing import (
    CALIBRATIONS,
    METADATA_CAL,
    model_stage,
    model_stage_pcie4,
    with_pipelines,
)


def test_speedups_match_paper_shape():
    """Figure 13(a): 2.08x / 19.25x / 12.59x."""
    targets = {"markdup": 2.08, "metadata": 19.25, "bqsr_table": 12.59}
    for stage, target in targets.items():
        timing = model_stage(stage, PAPER_READS, 151)
        assert timing.speedup == pytest.approx(target, rel=0.15), stage


def test_speedup_ordering():
    speedups = {
        stage: model_stage(stage, PAPER_READS, 151).speedup
        for stage in CALIBRATIONS
    }
    assert speedups["metadata"] > speedups["bqsr_table"] > speedups["markdup"]


def test_markdup_host_dominated():
    """Figure 13(b): the un-accelerated software portion dominates mark
    duplicates (~99%)."""
    breakdown = model_stage("markdup", PAPER_READS, 151).breakdown()
    assert breakdown["host"] > 0.9


def test_metadata_pcie_bound():
    """Figure 13(b): PCIe is 53.4% of metadata-update runtime."""
    breakdown = model_stage("metadata", PAPER_READS, 151).breakdown()
    assert breakdown["pcie"] == pytest.approx(0.534, abs=0.08)


def test_bqsr_pcie_fraction():
    """Figure 13(b): PCIe is 29.5% of BQSR runtime."""
    breakdown = model_stage("bqsr_table", PAPER_READS, 151).breakdown()
    assert breakdown["pcie"] == pytest.approx(0.295, abs=0.08)


def test_pcie4_what_if():
    """Section V-B: PCIe 4.0 lifts metadata to ~33x and BQSR to ~16.4x."""
    metadata = model_stage_pcie4("metadata", PAPER_READS, 151)
    bqsr = model_stage_pcie4("bqsr_table", PAPER_READS, 151)
    assert metadata.speedup == pytest.approx(33.0, rel=0.15)
    assert bqsr.speedup == pytest.approx(16.4, rel=0.15)


def test_pcie4_never_slower():
    for stage in CALIBRATIONS:
        v3 = model_stage(stage, PAPER_READS, 151)
        v4 = model_stage_pcie4(stage, PAPER_READS, 151)
        assert v4.speedup >= v3.speedup


def test_breakdown_sums_to_one():
    for stage in CALIBRATIONS:
        breakdown = model_stage(stage, PAPER_READS, 151).breakdown()
        assert sum(breakdown.values()) == pytest.approx(1.0)


def test_more_pipelines_reduce_hw_time():
    cal8 = with_pipelines(METADATA_CAL, 8)
    cal32 = with_pipelines(METADATA_CAL, 32)
    t8 = model_stage("metadata", PAPER_READS, 151, calibration=cal8)
    t32 = model_stage("metadata", PAPER_READS, 151, calibration=cal32)
    assert t32.hw_seconds < t8.hw_seconds
    assert t32.pcie_seconds == t8.pcie_seconds  # PCIe unaffected


def test_with_pipelines_validation():
    with pytest.raises(ValueError):
        with_pipelines(METADATA_CAL, 0)


def test_measured_cpb_moves_hw_component():
    slow = model_stage("metadata", PAPER_READS, 151, cycles_per_base=2.0)
    fast = model_stage("metadata", PAPER_READS, 151, cycles_per_base=1.0)
    assert slow.hw_seconds == pytest.approx(2 * fast.hw_seconds)
