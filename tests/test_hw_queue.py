"""Unit tests for the registered hardware queue."""

import pytest

from repro.hw.flit import Flit
from repro.hw.queue import HardwareQueue


def test_push_not_visible_until_commit():
    queue = HardwareQueue("q", capacity=4)
    queue.push(Flit({"v": 1}))
    assert not queue.can_pop()  # staged, not committed
    queue.commit()
    assert queue.can_pop()
    assert queue.pop()["v"] == 1


def test_capacity_counts_staged():
    queue = HardwareQueue("q", capacity=2)
    queue.push(Flit({}))
    queue.push(Flit({}))
    assert not queue.can_push()
    with pytest.raises(RuntimeError):
        queue.push(Flit({}))


def test_fifo_order():
    queue = HardwareQueue("q", capacity=8)
    for i in range(5):
        queue.push(Flit({"v": i}))
    queue.commit()
    assert [queue.pop()["v"] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_pop_empty_raises():
    queue = HardwareQueue("q")
    with pytest.raises(RuntimeError):
        queue.pop()


def test_peek_non_destructive():
    queue = HardwareQueue("q")
    queue.push(Flit({"v": 9}))
    queue.commit()
    assert queue.peek()["v"] == 9
    assert queue.peek()["v"] == 9
    assert len(queue) == 1


def test_is_empty_considers_staged():
    queue = HardwareQueue("q")
    assert queue.is_empty()
    queue.push(Flit({}))
    assert not queue.is_empty()


def test_statistics():
    queue = HardwareQueue("q", capacity=8)
    for i in range(3):
        queue.push(Flit({}))
    queue.commit()
    assert queue.total_pushed == 3
    assert queue.max_occupancy == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        HardwareQueue("q", capacity=0)
