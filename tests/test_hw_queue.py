"""Unit tests for the registered hardware queue."""

import pytest

from repro.hw.flit import Flit
from repro.hw.queue import HardwareQueue


def test_push_not_visible_until_commit():
    queue = HardwareQueue("q", capacity=4)
    queue.push(Flit({"v": 1}))
    assert not queue.can_pop()  # staged, not committed
    queue.commit()
    assert queue.can_pop()
    assert queue.pop()["v"] == 1


def test_capacity_counts_staged():
    queue = HardwareQueue("q", capacity=2)
    queue.push(Flit({}))
    queue.push(Flit({}))
    assert not queue.can_push()
    with pytest.raises(RuntimeError):
        queue.push(Flit({}))


def test_fifo_order():
    queue = HardwareQueue("q", capacity=8)
    for i in range(5):
        queue.push(Flit({"v": i}))
    queue.commit()
    assert [queue.pop()["v"] for _ in range(5)] == [0, 1, 2, 3, 4]


def test_pop_empty_raises():
    queue = HardwareQueue("q")
    with pytest.raises(RuntimeError):
        queue.pop()


def test_peek_non_destructive():
    queue = HardwareQueue("q")
    queue.push(Flit({"v": 9}))
    queue.commit()
    assert queue.peek()["v"] == 9
    assert queue.peek()["v"] == 9
    assert len(queue) == 1


def test_is_empty_considers_staged():
    queue = HardwareQueue("q")
    assert queue.is_empty()
    queue.push(Flit({}))
    assert not queue.is_empty()


def test_statistics():
    queue = HardwareQueue("q", capacity=8)
    for i in range(3):
        queue.push(Flit({}))
    queue.commit()
    assert queue.total_pushed == 3
    assert queue.max_occupancy == 3


def test_capacity_validation():
    with pytest.raises(ValueError):
        HardwareQueue("q", capacity=0)


def test_try_push_returns_false_when_full():
    queue = HardwareQueue("q", capacity=1)
    assert queue.try_push(Flit({"v": 1}))
    assert not queue.try_push(Flit({"v": 2}))  # staged flit counts
    queue.commit()
    assert not queue.try_push(Flit({"v": 3}))
    assert queue.pop()["v"] == 1
    assert queue.try_push(Flit({"v": 4}))


def test_try_push_does_not_count_stalls():
    """try_push itself must not touch full_stalls — attribution happens
    once, in Module._note_stalled(queue)."""
    queue = HardwareQueue("q", capacity=1)
    queue.try_push(Flit({}))
    queue.try_push(Flit({}))
    queue.try_push(Flit({}))
    assert queue.full_stalls == 0


def test_full_stalls_attributed_to_blocking_queue():
    """A back-pressured producer charges its stall cycles to the queue
    that blocked it."""
    from repro.hw.engine import Engine
    from repro.hw.flit import item_flits

    import sys
    sys.path.insert(0, __file__.rsplit("/", 1)[0])
    from hw_harness import ListSink, ListSource

    class SlowSink(ListSink):
        def tick(self, cycle):
            if cycle % 4 == 0:
                super().tick(cycle)

    for mode in ("dense", "event"):
        engine = Engine()
        source = engine.add_module(ListSource("src", item_flits(list(range(40)))))
        sink = engine.add_module(SlowSink("sink"))
        queue = engine.connect(source, sink, capacity=2)
        engine.run(mode=mode)
        assert queue.full_stalls > 0, mode
        assert queue.full_stalls == source.stall_cycles, mode


def test_occupancy_and_is_full():
    queue = HardwareQueue("q", capacity=2)
    assert queue.occupancy() == 0 and not queue.is_full()
    queue.push(Flit({}))
    assert queue.occupancy() == 1
    queue.push(Flit({}))
    assert queue.is_full()
    queue.commit()
    assert queue.occupancy() == 2 and queue.is_full()
