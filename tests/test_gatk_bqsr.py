"""Unit tests for the BQSR software baseline (Section IV-D)."""

import math

import numpy as np
import pytest

from repro.gatk.bqsr import (
    CovariateTables,
    apply_recalibration,
    build_covariate_tables,
    context_of,
    cycle_of,
    empirical_quality,
    fit_recalibration_model,
    n_cycle_values,
    run_bqsr,
)
from repro.genomics.cigar import Cigar
from repro.genomics.read import FLAG_REVERSE, AlignedRead
from repro.genomics.reference import Chromosome, ReferenceGenome
from repro.genomics.sequences import encode_sequence


def make_genome(ref_text, snp_positions=()):
    seq = encode_sequence(ref_text)
    snp = np.zeros(len(seq), dtype=bool)
    for position in snp_positions:
        snp[position] = True
    return ReferenceGenome([Chromosome(1, seq, snp)])


def make_read(pos, cigar_text, seq_text, qual=30, flags=0, read_group=0):
    cigar = Cigar.parse(cigar_text)
    seq = encode_sequence(seq_text)
    return AlignedRead(
        name="r", chrom=1, pos=pos, cigar=cigar, seq=seq,
        qual=np.full(len(seq), qual, dtype=np.uint8),
        flags=flags, read_group=read_group,
    )


def test_n_cycle_values_matches_paper():
    # "the # of cycle values is 302" for 151 bp reads (footnote 3).
    assert n_cycle_values(151) == 302


def test_cycle_forward_and_reverse():
    fwd = make_read(0, "4M", "ACGT")
    rev = make_read(0, "4M", "ACGT", flags=FLAG_REVERSE)
    assert cycle_of(fwd, 1, 4) == 1
    assert cycle_of(rev, 1, 4) == 4 + (4 - 1 - 1)


def test_context_of():
    read = make_read(0, "4M", "ACGT")
    assert context_of(read, 0) == -1
    assert context_of(read, 1) == 0 * 4 + 1  # AC
    assert context_of(read, 3) == 2 * 4 + 3  # GT


def test_counts_observations_and_errors():
    genome = make_genome("AAAA")
    read = make_read(0, "4M", "AACA")  # one mismatch at offset 2
    tables = build_covariate_tables([read], genome, read_length=4)
    table = tables[0]
    assert table.observations() == 4
    assert table.errors() == 1


def test_snp_sites_fully_excluded():
    """Figure 12: the !IS_SNP filter precedes ALL counters."""
    genome = make_genome("AAAA", snp_positions=[2])
    read = make_read(0, "4M", "AACA")  # the mismatch is AT the SNP site
    table = build_covariate_tables([read], genome, read_length=4)[0]
    assert table.observations() == 3  # SNP site not even observed
    assert table.errors() == 0


def test_indels_not_binned():
    genome = make_genome("AAAAAA")
    read = make_read(0, "2M1I2M", "AAGAA")
    table = build_covariate_tables([read], genome, read_length=5)[0]
    assert table.observations() == 4  # only M bases


def test_reads_split_by_read_group():
    genome = make_genome("AAAA")
    reads = [
        make_read(0, "4M", "AAAA", read_group=0),
        make_read(0, "4M", "AAAA", read_group=2),
    ]
    tables = build_covariate_tables(reads, genome, read_length=4)
    assert set(tables) == {0, 2}


def test_bin_layout_matches_paper_formulas():
    table = CovariateTables(read_length=10)
    assert table.bin_cycle(30, 7) == 30 * 20 + 7
    assert table.bin_context(30, 5) == 30 * 16 + 5


def test_context_table_skips_first_base():
    genome = make_genome("AAAA")
    read = make_read(0, "4M", "AAAA")
    table = build_covariate_tables([read], genome, read_length=4)[0]
    assert int(table.total_cycle.sum()) == 4
    assert int(table.total_context.sum()) == 3


def test_merge_accumulates():
    a = CovariateTables(read_length=4)
    b = CovariateTables(read_length=4)
    a.total_cycle[0] = 2
    b.total_cycle[0] = 3
    a.merge(b)
    assert a.total_cycle[0] == 5
    with pytest.raises(ValueError):
        a.merge(CovariateTables(read_length=5))


def test_empirical_quality_smoothing():
    # No errors over many observations -> high quality, finite.
    assert empirical_quality(0, 10_000) > 35
    # Empty bin -> the prior: -10*log10(1/2) ~ 3.
    assert math.isclose(empirical_quality(0, 0), 3.0103, abs_tol=0.01)


def test_recalibration_corrects_overconfident_scores():
    """Reads reporting Q30 (1/1000 errors) but actually erring at 1% must
    be recalibrated downward."""
    rng = np.random.default_rng(5)
    genome = make_genome("A" * 2000)
    reads = []
    for start in range(0, 1900, 20):
        seq = np.zeros(20, dtype=np.uint8)
        errors = rng.random(20) < 0.01
        seq[errors] = 1
        reads.append(AlignedRead(
            name="r", chrom=1, pos=start, cigar=Cigar.parse("20M"),
            seq=seq, qual=np.full(20, 30, dtype=np.uint8),
        ))
    tables, changed = run_bqsr(reads, genome, read_length=20)
    assert changed > 0
    # First bases carry no context covariate, so their recalibrated score
    # reflects the global + cycle evidence: an empirical ~1% error rate
    # (Q20-ish), far below the reported Q30.
    first_base_quality = np.mean([read.qual[0] for read in reads])
    assert 12 < first_base_quality < 25
    # Overall the mass of scores moves off the reported value.
    assert np.mean([read.qual.mean() for read in reads]) < 30


def test_recalibration_of_empty_tables_is_identity():
    model = fit_recalibration_model(CovariateTables(read_length=4))
    assert model.recalibrate(30, 0, 0) == 30


def test_apply_recalibration_skips_unknown_groups():
    read = make_read(0, "4M", "AAAA", read_group=9)
    changed = apply_recalibration([read], models={})
    assert changed == 0
