"""Unit tests for column specs and schemas."""

import numpy as np
import pytest

from repro.tables.schema import ColumnSpec, Schema


def test_scalar_spec():
    spec = ColumnSpec("POS", "uint32")
    assert not spec.is_array
    assert spec.dtype == np.dtype(np.uint32)
    assert spec.element_size == 4


def test_array_spec():
    spec = ColumnSpec("SEQ", "uint8[]")
    assert spec.is_array
    assert spec.element_size == 1


def test_invalid_kind():
    with pytest.raises(ValueError):
        ColumnSpec("X", "float128")


def test_invalid_name():
    with pytest.raises(ValueError):
        ColumnSpec("2bad", "uint8")
    with pytest.raises(ValueError):
        ColumnSpec("", "uint8")


def test_schema_of_ordering():
    schema = Schema.of(A="uint8", B="uint32", C="bool")
    assert schema.names == ("A", "B", "C")
    assert len(schema) == 3


def test_schema_lookup():
    schema = Schema.of(POS="uint32", SEQ="uint8[]")
    assert schema["SEQ"].is_array
    assert "POS" in schema
    assert "QUAL" not in schema


def test_schema_duplicate_names_rejected():
    with pytest.raises(ValueError):
        Schema((ColumnSpec("A", "uint8"), ColumnSpec("A", "uint32")))


def test_schema_subset():
    schema = Schema.of(A="uint8", B="uint32", C="bool")
    sub = schema.subset(["C", "A"])
    assert sub.names == ("C", "A")


def test_schema_equality():
    assert Schema.of(A="uint8") == Schema.of(A="uint8")
    assert Schema.of(A="uint8") != Schema.of(A="uint16")
