"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.eval.workloads import Workload, make_workload
from repro.genomics import ReadSimulator, ReferenceGenome, SimulatorConfig

# CI runs must be reproducible commit-over-commit: derandomize pins every
# hypothesis example sequence to the test body, so a red CI bisects to a
# code change rather than a lucky draw.  Local runs keep full randomness.
settings.register_profile("ci", derandomize=True)
if os.environ.get("CI"):
    settings.load_profile("ci")


@pytest.fixture(scope="session")
def small_genome() -> ReferenceGenome:
    """A 5 kbp single-chromosome genome."""
    return ReferenceGenome.random({1: 5000}, snp_rate=0.01, seed=101)


@pytest.fixture(scope="session")
def two_chrom_genome() -> ReferenceGenome:
    """Two chromosomes of different lengths."""
    return ReferenceGenome.random({1: 6000, 2: 3000}, snp_rate=0.005, seed=102)


@pytest.fixture(scope="session")
def small_reads(small_genome):
    """~60 short reads with duplicates, indels, and clips."""
    simulator = ReadSimulator(
        small_genome,
        SimulatorConfig(seed=103, read_length=50, read_groups=2),
    )
    return simulator.simulate(60)


@pytest.fixture(scope="session")
def workload() -> Workload:
    """The standard small evaluation workload (two chromosomes)."""
    return make_workload(
        n_reads=80,
        read_length=60,
        chromosomes=(20, 21),
        genome_scale=1.2e-6,
        psize=2500,
        seed=104,
    )
