"""Tests for the hardware callset set-operations (VQSR intersection)."""

import numpy as np
import pytest

from repro.accel.callset_ops import (
    run_callset_difference,
    run_callset_intersection,
)
from repro.variants import CallSet, Variant


def random_callset(n, seed, name):
    rng = np.random.default_rng(seed)
    seen = set()
    variants = []
    bases = "ACGT"
    for _ in range(n):
        chrom = int(rng.integers(1, 4))
        pos = int(rng.integers(0, 800))
        ref = bases[int(rng.integers(0, 4))]
        alt = bases[(bases.index(ref) + 1 + int(rng.integers(0, 3))) % 4]
        variant = Variant(chrom=chrom, pos=pos, ref=ref, alt=alt)
        if variant.key() not in seen:
            seen.add(variant.key())
            variants.append(variant)
    return CallSet(variants, name=name)


@pytest.fixture(scope="module")
def callsets():
    return random_callset(120, 71, "calls"), random_callset(120, 72, "truth")


def test_intersection_matches_software(callsets):
    a, b = callsets
    hw = run_callset_intersection(a, b)
    assert hw.callset.keys() == a.intersect(b).keys()


def test_difference_matches_software(callsets):
    a, b = callsets
    hw = run_callset_difference(a, b)
    assert hw.callset.keys() == a.subtract(b).keys()


def test_intersection_symmetric_keys(callsets):
    a, b = callsets
    ab = run_callset_intersection(a, b).callset.keys()
    ba = run_callset_intersection(b, a).callset.keys()
    assert ab == ba


def test_empty_operands():
    empty = CallSet([], name="empty")
    full = random_callset(10, 73, "full")
    assert len(run_callset_intersection(empty, full).callset) == 0
    assert len(run_callset_intersection(full, empty).callset) == 0
    assert run_callset_difference(full, empty).callset.keys() == full.keys()


def test_same_position_different_alleles_distinct():
    a = CallSet([Variant(chrom=1, pos=5, ref="A", alt="C")], name="a")
    b = CallSet([Variant(chrom=1, pos=5, ref="A", alt="G")], name="b")
    assert len(run_callset_intersection(a, b).callset) == 0


def test_throughput_one_variant_per_cycle(callsets):
    a, b = callsets
    hw = run_callset_intersection(a, b)
    assert hw.stats.cycles < (len(a) + len(b)) * 1.5 + 50
