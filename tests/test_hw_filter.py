"""Unit tests for the Filter module (Figure 6)."""

import pytest

from repro.hw.flit import Flit
from repro.hw.modules import Filter
from repro.hw.modules.filterm import COMPARATORS

from hw_harness import drive


def run_filter(filter_module, flits):
    out, _ = drive(filter_module, {"in": flits})
    return out["out"]


def frame(values, last_index=None):
    flits = [Flit({"v": v}) for v in values]
    if flits:
        flits[-1].last = True
    return flits


def test_constant_comparison():
    f = Filter("f", field="v", op=">", constant=5)
    out = run_filter(f, frame([3, 7, 5, 9]))
    assert [x["v"] for x in out if x.fields] == [7, 9]


def test_field_comparison():
    f = Filter("f", field="a", op="==", other_field="b")
    flits = [Flit({"a": 1, "b": 1}), Flit({"a": 2, "b": 3}, last=True)]
    out = run_filter(f, flits)
    assert [x["a"] for x in out if x.fields] == [1]


def test_all_comparators_available():
    assert set(COMPARATORS) == {"==", "!=", "<", "<=", ">", ">="}


def test_dropped_last_flit_becomes_boundary():
    f = Filter("f", field="v", op="<", constant=0)
    out = run_filter(f, frame([1, 2, 3]))
    assert len(out) == 1
    assert out[0].last and not out[0].fields


def test_passing_last_flit_keeps_last():
    f = Filter("f", field="v", op=">", constant=0)
    out = run_filter(f, frame([1, 2]))
    assert out[-1].last and out[-1]["v"] == 2


def test_boundary_flits_forwarded():
    f = Filter("f", field="v", op=">", constant=0)
    out = run_filter(f, [Flit({}, last=True)])
    assert len(out) == 1 and out[0].last


def test_custom_predicate():
    f = Filter("f", field="v", predicate=lambda flit: flit["v"] % 2 == 0)
    out = run_filter(f, frame([1, 2, 3, 4]))
    assert [x["v"] for x in out if x.fields] == [2, 4]


def test_dropped_count():
    f = Filter("f", field="v", op=">", constant=10)
    run_filter(f, frame([1, 2, 30]))
    assert f.dropped == 2


def test_config_validation():
    with pytest.raises(ValueError):
        Filter("f", field="v", op="~", constant=1)
    with pytest.raises(ValueError):
        Filter("f", field="v", op="==")  # neither constant nor other_field
    with pytest.raises(ValueError):
        Filter("f", field="v", op="==", constant=1, other_field="b")
