"""The SQL-driven stage drivers against the pure-Python gatk oracles.

Every test runs on BOTH execution backends (``reference`` and ``fast``)
via the module-wide ``backend`` fixture: the drivers must be
bit-identical to :mod:`repro.gatk` regardless of which backend executes
the plans.  A seeded fuzz case widens the inputs beyond the curated
workload (high duplicate pressure, short reads, small partitions).
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from repro.eval.workloads import make_workload
from repro.gatk.bqsr import build_covariate_tables
from repro.gatk.markdup import mark_duplicates
from repro.gatk.metadata import compute_read_metadata
from repro.gatk.sql_driver import (
    sql_build_covariate_tables,
    sql_mark_duplicates,
    sql_update_metadata,
)


@pytest.fixture(params=["reference", "fast"])
def backend(request):
    return request.param


#: (seed, n_reads, read_length, duplicate_rate, genome_scale, psize).
DRIVER_FUZZ_CASES = [
    (2401, 80, 50, 0.40, 1.2e-6, 1200),
    (2402, 60, 70, 0.10, 2.0e-6, 3000),
]


@pytest.fixture(
    scope="module",
    params=DRIVER_FUZZ_CASES,
    ids=lambda case: f"seed{case[0]}",
)
def fuzz_workload(request):
    seed, n_reads, read_length, dup_rate, scale, psize = request.param
    return make_workload(
        n_reads=n_reads,
        read_length=read_length,
        duplicate_rate=dup_rate,
        genome_scale=scale,
        psize=psize,
        chromosomes=(20, 21),
        seed=seed,
    )


def assert_markdup_identical(workload, backend):
    got = sql_mark_duplicates(copy.deepcopy(workload.reads), backend=backend)
    expected = mark_duplicates(workload.reads)
    assert [r.name for r in got.sorted_reads] == [
        r.name for r in expected.sorted_reads
    ]
    assert got.duplicate_indices == expected.duplicate_indices
    assert got.duplicate_sets == expected.duplicate_sets
    assert [r.is_duplicate for r in got.sorted_reads] == [
        r.is_duplicate for r in expected.sorted_reads
    ]


def assert_metadata_identical(workload, backend):
    got = sql_update_metadata(
        workload.partitions, workload.reference, workload.read_length,
        backend=backend,
    )
    assert sorted(got) == list(range(workload.n_reads))
    for rowid, read in enumerate(workload.reads):
        expected = compute_read_metadata(read, workload.genome)
        assert got[rowid].nm == expected.nm, read.name
        assert got[rowid].md == expected.md, read.name
        assert got[rowid].uq == expected.uq, read.name


def assert_bqsr_identical(workload, backend):
    got = sql_build_covariate_tables(
        workload.group_partitions, workload.reference, workload.read_length,
        backend=backend,
    )
    expected = build_covariate_tables(
        workload.reads, workload.genome, workload.read_length
    )
    assert set(got) == set(expected)
    for read_group, tables in expected.items():
        assert np.array_equal(got[read_group].total_cycle, tables.total_cycle)
        assert np.array_equal(got[read_group].error_cycle, tables.error_cycle)
        assert np.array_equal(
            got[read_group].total_context, tables.total_context
        )
        assert np.array_equal(
            got[read_group].error_context, tables.error_context
        )


def test_markdup_matches_oracle(workload, backend):
    """SQL mark-duplicates ≡ the gatk oracle: same sort order, duplicate
    indices, set count, and flags."""
    assert_markdup_identical(workload, backend)


def test_markdup_empty_input(backend):
    result = sql_mark_duplicates([], backend=backend)
    assert result.sorted_reads == []
    assert result.duplicate_indices == []
    assert result.duplicate_sets == 0


def test_metadata_matches_oracle(workload, backend):
    """SQL metadata update ≡ compute_read_metadata on every read:
    NM, MD, and UQ bit-identical."""
    assert_metadata_identical(workload, backend)


def test_bqsr_matches_oracle(workload, backend):
    """SQL covariate construction ≡ build_covariate_tables per read
    group: all four SPM arrays identical."""
    assert_bqsr_identical(workload, backend)


def test_fuzz_drivers_match_oracles(fuzz_workload, backend):
    """All three drivers stay bit-identical on seeded fuzz workloads."""
    assert_markdup_identical(fuzz_workload, backend)
    assert_metadata_identical(fuzz_workload, backend)
    assert_bqsr_identical(fuzz_workload, backend)
