"""Unit tests for the MDGen custom module vs the software MdBuilder."""

import numpy as np

from repro.gatk.metadata import MdBuilder
from repro.genomics.sequences import encode_base
from repro.hw.flit import Flit
from repro.hw.modules import MdGen, join_md_tokens

from hw_harness import drive


def run_mdgen(events):
    """events: list of (op, base_char, ref_char) or 'END'."""
    flits = []
    for event in events:
        if event == "END":
            flits.append(Flit({}, last=True))
        else:
            op, base, ref = event
            fields = {"op": op}
            if base is not None:
                fields["base"] = encode_base(base)
            if ref is not None:
                fields["ref"] = encode_base(ref)
            flits.append(Flit(fields))
    module = MdGen("md")
    out, _ = drive(module, {"in": flits})
    items = []
    current = []
    for flit in out["out"]:
        if "md" in flit.fields:
            current.append(flit["md"])
        if flit.last:
            items.append(join_md_tokens(current))
            current = []
    return items


def test_paper_figure2_md():
    """Read 1 of Figure 2 has MD = 1C6A3."""
    events = [("M", "A", "A"), ("M", "G", "C")]
    events += [("M", "A", "A")] * 6
    events += [("I", "A", None)]
    events += [("M", "G", "A")]
    events += [("M", "T", "T")] * 3
    events += ["END"]
    # Aligned bases: match, mismatch(C), 6 match, [ins], mismatch(A), 3 match.
    assert run_mdgen(events) == ["1C6A3"]


def test_all_match():
    events = [("M", "A", "A")] * 5 + ["END"]
    assert run_mdgen(events) == ["5"]


def test_leading_mismatch_gets_zero():
    events = [("M", "A", "C"), ("M", "G", "G"), "END"]
    assert run_mdgen(events) == ["0C1"]


def test_adjacent_mismatches_get_zero_between():
    events = [("M", "A", "C"), ("M", "A", "G"), "END"]
    assert run_mdgen(events) == ["0C0G0"]


def test_deletion_run_shares_caret():
    events = [("M", "A", "A"), ("D", None, "C"), ("D", None, "G"),
              ("M", "T", "T"), "END"]
    assert run_mdgen(events) == ["1^CG1"]


def test_separate_deletions_get_separate_carets():
    events = [("D", None, "C"), ("M", "A", "A"), ("D", None, "G"), "END"]
    assert run_mdgen(events) == ["0^C1^G0"]


def test_insertions_invisible():
    events = [("M", "A", "A"), ("I", "G", None), ("M", "T", "T"), "END"]
    assert run_mdgen(events) == ["2"]


def test_multiple_items():
    events = [("M", "A", "A"), "END", ("M", "A", "C"), "END"]
    assert run_mdgen(events) == ["1", "0C0"]


def test_matches_software_mdbuilder_on_random_streams():
    rng = np.random.default_rng(33)
    for _ in range(20):
        events = []
        builder = MdBuilder()
        for _ in range(rng.integers(1, 40)):
            kind = rng.choice(["match", "mismatch", "del", "ins"])
            ref = "ACGT"[rng.integers(0, 4)]
            if kind == "match":
                events.append(("M", ref, ref))
                builder.match()
            elif kind == "mismatch":
                base = "ACGT"[(encode_base(ref) + 1) % 4]
                events.append(("M", base, ref))
                builder.mismatch(encode_base(ref))
            elif kind == "del":
                events.append(("D", None, ref))
                builder.deletion(encode_base(ref))
            else:
                events.append(("I", ref, None))
                # Insertions never reach the MdBuilder in software.
        events.append("END")
        assert run_mdgen(events) == [builder.finish()]
