"""Tests for the cycle tracer."""

from repro.hw.engine import Engine
from repro.hw.flit import item_flits
from repro.hw.modules import Reducer
from repro.hw.trace import Tracer

from hw_harness import ListSink, ListSource


def build_chain(n_values=20):
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(n_values)))))
    middle = engine.add_module(Reducer("mid", op="sum"))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, middle)
    engine.connect(middle, sink)
    return engine, source, middle, sink


def test_traced_run_matches_untraced_result():
    engine, _src, _mid, sink = build_chain()
    tracer = Tracer(engine)
    tracer.run_traced()
    assert len(sink.collected) == 1
    assert sink.collected[0]["value"] == sum(range(20))


def test_utilization_sums():
    engine, source, _mid, _sink = build_chain()
    tracer = Tracer(engine)
    tracer.run_traced()
    summary = tracer.summary()
    assert 0 < summary["src"]["utilization"] <= 1.0
    for stats in summary.values():
        total = stats["utilization"] + stats["stalled"] + stats["starved"]
        assert total <= 1.0 + 1e-9


def test_bottleneck_is_busiest_module():
    engine, _src, _mid, _sink = build_chain()
    tracer = Tracer(engine)
    tracer.run_traced()
    assert tracer.bottleneck() in ("src", "mid", "sink")


def test_render_waveform():
    engine, _src, _mid, _sink = build_chain(5)
    tracer = Tracer(engine)
    tracer.run_traced()
    text = tracer.render(width=40)
    assert "src" in text and "sink" in text
    assert "#" in text  # some activity recorded
    lines = text.splitlines()
    assert len(lines) == 4  # header + three modules


def test_max_cycles_caps_samples():
    engine, _src, _mid, _sink = build_chain(50)
    tracer = Tracer(engine, max_cycles=10)
    tracer.run_traced(max_cycles=10)
    assert tracer.cycles_traced == 10


def test_attach_mid_run_starts_at_next_cycle_boundary():
    """Regression: a tracer attached mid-run used to record a phantom
    sample for the cycle that finished *before* the attach, double
    counting the attach cycle and skewing every fraction.  Sampling must
    start at the next cycle boundary."""
    engine, _src, _mid, _sink = build_chain()
    for _ in range(3):
        engine.step()
    tracer = Tracer(engine)
    assert tracer.attach_cycle == 3
    # sample() before any post-attach step: pre-attach activity, ignored.
    assert tracer.sample() is False
    assert tracer.cycles_traced == 0
    engine.step()
    assert tracer.sample() is True
    assert tracer.cycles_traced == 1
    for trace in tracer.traces.values():
        assert len(trace.samples) == 1


def test_sample_twice_without_step_counts_once():
    """Regression: two sample() calls for the same cycle must record one
    sample, not two."""
    engine, _src, _mid, _sink = build_chain()
    tracer = Tracer(engine)
    engine.step()
    assert tracer.sample() is True
    assert tracer.sample() is False
    assert tracer.cycles_traced == 1
    engine.step()
    assert tracer.sample() is True
    assert tracer.cycles_traced == 2


def test_backpressure_visible_in_trace():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(40)))))

    class SlowSink(ListSink):
        def tick(self, cycle):
            if cycle % 3 == 0:
                super().tick(cycle)

    sink = engine.add_module(SlowSink("sink"))
    engine.connect(source, sink, capacity=2)
    tracer = Tracer(engine)
    tracer.run_traced()
    assert tracer.summary()["src"]["stalled"] > 0.2
