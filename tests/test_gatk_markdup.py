"""Unit tests for the mark-duplicates software baseline (Section IV-B)."""

import numpy as np
import pytest

from repro.gatk.markdup import mark_duplicates, select_survivor
from repro.genomics.cigar import Cigar
from repro.genomics.read import FLAG_REVERSE, AlignedRead


def read_at(pos, cigar="5M", qual_value=30, name="r", flags=0, chrom=1):
    cig = Cigar.parse(cigar)
    n = cig.read_length()
    return AlignedRead(
        name=name, chrom=chrom, pos=pos, cigar=cig,
        seq=np.zeros(n, dtype=np.uint8),
        qual=np.full(n, qual_value, dtype=np.uint8),
        flags=flags,
    )


def test_no_duplicates():
    reads = [read_at(0), read_at(100), read_at(200)]
    result = mark_duplicates(reads)
    assert result.num_duplicates == 0
    assert result.duplicate_sets == 0


def test_same_position_marks_all_but_best():
    reads = [
        read_at(50, qual_value=20, name="low"),
        read_at(50, qual_value=40, name="high"),
        read_at(50, qual_value=30, name="mid"),
    ]
    result = mark_duplicates(reads)
    assert result.num_duplicates == 2
    survivors = [r for r in result.sorted_reads if not r.is_duplicate]
    assert [r.name for r in survivors] == ["high"]


def test_soft_clip_adjusted_keys_collide():
    # pos 52 with 2S has unclipped start 50 -> duplicates read at pos 50.
    reads = [read_at(50, "5M", name="a"), read_at(52, "2S3M", name="b")]
    result = mark_duplicates(reads)
    assert result.num_duplicates == 1


def test_reverse_strand_uses_end_key():
    # Forward at 50 and reverse ending at 50: same coordinate, different
    # strand -> NOT duplicates.
    forward = read_at(50, "5M", name="f")
    reverse = read_at(46, "5M", name="r", flags=FLAG_REVERSE)
    result = mark_duplicates([forward, reverse])
    assert result.num_duplicates == 0


def test_reverse_duplicates_by_unclipped_end():
    a = read_at(46, "5M", name="a", flags=FLAG_REVERSE)  # end 50
    b = read_at(44, "5M2S", name="b", flags=FLAG_REVERSE)  # end 48+2 = 50
    result = mark_duplicates([a, b])
    assert result.num_duplicates == 1


def test_different_chromosomes_never_duplicate():
    result = mark_duplicates([read_at(50, chrom=1), read_at(50, chrom=2)])
    assert result.num_duplicates == 0


def test_result_sorted_by_coordinate():
    reads = [read_at(300), read_at(100, chrom=2), read_at(200)]
    result = mark_duplicates(reads)
    keys = [(r.chrom, r.pos) for r in result.sorted_reads]
    assert keys == sorted(keys)


def test_injected_quality_sums_used():
    reads = [read_at(50, qual_value=10, name="a"), read_at(50, qual_value=10, name="b")]
    # Force "b" to win via injected sums despite equal real qualities.
    result = mark_duplicates(reads, quality_sums=[1, 100])
    survivor = [r for r in result.sorted_reads if not r.is_duplicate][0]
    assert survivor.name == "b"


def test_injected_sums_length_checked():
    with pytest.raises(ValueError):
        mark_duplicates([read_at(0)], quality_sums=[1, 2])


def test_tie_breaks_to_earliest():
    best, dups = select_survivor([0, 1, 2], [5, 5, 5])
    assert best == 0 and dups == [1, 2]


def test_select_survivor_highest_quality():
    best, dups = select_survivor([3, 4, 5], {3: 10, 4: 30, 5: 20})
    assert best == 4


def test_flags_reset_between_runs():
    reads = [read_at(50, qual_value=10), read_at(50, qual_value=20)]
    first = mark_duplicates(reads)
    assert first.num_duplicates == 1
    # Running again on already-flagged reads must not double-mark.
    second = mark_duplicates(first.sorted_reads)
    assert second.num_duplicates == 1


def test_simulated_duplicates_all_found(small_genome):
    from repro.genomics.simulator import ReadSimulator, SimulatorConfig

    sim = ReadSimulator(small_genome, SimulatorConfig(seed=77, duplicate_rate=0.5))
    reads = sim.simulate(50)
    result = mark_duplicates(reads)
    # Every duplicate set keeps exactly one survivor.
    from repro.genomics.read import pair_key

    by_key = {}
    for read in result.sorted_reads:
        by_key.setdefault(pair_key(read), []).append(read)
    for members in by_key.values():
        survivors = [r for r in members if not r.is_duplicate]
        assert len(survivors) == 1
