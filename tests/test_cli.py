"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "--fasta", "a", "--sam", "b"])
    assert args.command == "simulate"
    args = parser.parse_args([
        "preprocess", "--fasta", "a", "--sam", "b", "--out", "c"
    ])
    assert args.command == "preprocess"


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_and_preprocess_and_call(tmp_path, capsys):
    fasta = tmp_path / "ref.fa"
    sam = tmp_path / "reads.sam"
    tagged = tmp_path / "tagged.sam"
    vcf = tmp_path / "calls.vcf"

    assert main([
        "simulate", "--fasta", str(fasta), "--sam", str(sam),
        "--reads", "80", "--read-length", "50", "--seed", "3",
        "--chromosomes", "21",
    ]) == 0
    assert fasta.exists() and sam.exists()

    assert main([
        "preprocess", "--fasta", str(fasta), "--sam", str(sam),
        "--out", str(tagged), "--psize", "2000", "--overlap", "80",
    ]) == 0
    text = tagged.read_text()
    assert "MD:Z:" in text and "NM:i:" in text

    assert main([
        "call", "--fasta", str(fasta), "--sam", str(tagged),
        "--out", str(vcf),
    ]) == 0
    assert vcf.read_text().startswith("##fileformat=VCF")


def test_simulate_writes_fastq(tmp_path):
    fasta = tmp_path / "r.fa"
    sam = tmp_path / "r.sam"
    fastq = tmp_path / "r.fq"
    main([
        "simulate", "--fasta", str(fasta), "--sam", str(sam),
        "--fastq", str(fastq), "--reads", "20", "--read-length", "40",
        "--chromosomes", "21",
    ])
    lines = fastq.read_text().splitlines()
    assert len(lines) % 4 == 0 and lines[0].startswith("@")


def test_reproduce_prints_speedups(capsys):
    assert main(["reproduce", "--reads", "40"]) == 0
    out = capsys.readouterr().out
    assert "markdup" in out and "metadata" in out and "bqsr_table" in out


def test_profile_parser_defaults():
    args = build_parser().parse_args(["profile"])
    assert args.command == "profile"
    assert args.stage == "markdup"
    assert args.mode is None and args.trace is None


def test_profile_emits_report_and_artifacts(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    report = tmp_path / "report.json"
    rows = tmp_path / "report.csv"
    assert main([
        "profile", "--stage", "markdup", "--reads", "40",
        "--trace", str(trace), "--out", str(report), "--csv", str(rows),
    ]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "busy" in out

    # the chrome trace is valid JSON in the trace-event format
    loaded = json.loads(trace.read_text())
    assert loaded["traceEvents"]
    assert any(e["ph"] == "X" for e in loaded["traceEvents"])

    # the flat report upholds the cycle-attribution invariant
    flat = json.loads(report.read_text())
    for name, entry in flat["modules"].items():
        states = entry["busy"] + entry["starved"] + entry["stalled"] + entry["idle"]
        assert states == flat["cycles"], name
    assert rows.read_text().startswith("section,")
