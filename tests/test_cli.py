"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["simulate", "--fasta", "a", "--sam", "b"])
    assert args.command == "simulate"
    args = parser.parse_args([
        "preprocess", "--fasta", "a", "--sam", "b", "--out", "c"
    ])
    assert args.command == "preprocess"


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_simulate_and_preprocess_and_call(tmp_path, capsys):
    fasta = tmp_path / "ref.fa"
    sam = tmp_path / "reads.sam"
    tagged = tmp_path / "tagged.sam"
    vcf = tmp_path / "calls.vcf"

    assert main([
        "simulate", "--fasta", str(fasta), "--sam", str(sam),
        "--reads", "80", "--read-length", "50", "--seed", "3",
        "--chromosomes", "21",
    ]) == 0
    assert fasta.exists() and sam.exists()

    assert main([
        "preprocess", "--fasta", str(fasta), "--sam", str(sam),
        "--out", str(tagged), "--psize", "2000", "--overlap", "80",
    ]) == 0
    text = tagged.read_text()
    assert "MD:Z:" in text and "NM:i:" in text

    assert main([
        "call", "--fasta", str(fasta), "--sam", str(tagged),
        "--out", str(vcf),
    ]) == 0
    assert vcf.read_text().startswith("##fileformat=VCF")


def test_simulate_writes_fastq(tmp_path):
    fasta = tmp_path / "r.fa"
    sam = tmp_path / "r.sam"
    fastq = tmp_path / "r.fq"
    main([
        "simulate", "--fasta", str(fasta), "--sam", str(sam),
        "--fastq", str(fastq), "--reads", "20", "--read-length", "40",
        "--chromosomes", "21",
    ])
    lines = fastq.read_text().splitlines()
    assert len(lines) % 4 == 0 and lines[0].startswith("@")


def test_reproduce_prints_speedups(capsys):
    assert main(["reproduce", "--reads", "40"]) == 0
    out = capsys.readouterr().out
    assert "markdup" in out and "metadata" in out and "bqsr_table" in out


def test_profile_parser_defaults():
    args = build_parser().parse_args(["profile"])
    assert args.command == "profile"
    assert args.stage == "markdup"
    assert args.mode is None and args.trace is None


def test_profile_emits_report_and_artifacts(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    report = tmp_path / "report.json"
    rows = tmp_path / "report.csv"
    assert main([
        "profile", "--stage", "markdup", "--reads", "40",
        "--trace", str(trace), "--out", str(report), "--csv", str(rows),
    ]) == 0
    out = capsys.readouterr().out
    assert "cycles" in out and "busy" in out

    # the chrome trace is valid JSON in the trace-event format
    loaded = json.loads(trace.read_text())
    assert loaded["traceEvents"]
    assert any(e["ph"] == "X" for e in loaded["traceEvents"])

    # the flat report upholds the cycle-attribution invariant
    flat = json.loads(report.read_text())
    for name, entry in flat["modules"].items():
        states = entry["busy"] + entry["starved"] + entry["stalled"] + entry["idle"]
        assert states == flat["cycles"], name
    assert rows.read_text().startswith("section,")


def test_profile_unknown_stage_exits_cleanly(capsys):
    code = main(["--no-ledger", "profile", "--stage", "nope"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown stage" in err and "markdup" in err
    assert "Traceback" not in err


def test_profile_creates_parent_directories(tmp_path, capsys):
    trace = tmp_path / "deep" / "traces" / "t.json"
    report = tmp_path / "deep" / "reports" / "r.json"
    rows = tmp_path / "other" / "r.csv"
    assert main([
        "--no-ledger", "profile", "--stage", "markdup", "--reads", "40",
        "--trace", str(trace), "--out", str(report), "--csv", str(rows),
    ]) == 0
    assert trace.exists() and report.exists() and rows.exists()


def test_profile_prints_bottleneck_analysis(capsys):
    assert main([
        "--no-ledger", "profile", "--stage", "markdup", "--reads", "40",
    ]) == 0
    out = capsys.readouterr().out
    assert "root bottleneck" in out


def test_analyze_over_saved_report(tmp_path, capsys):
    report = tmp_path / "r.json"
    assert main([
        "--no-ledger", "profile", "--stage", "markdup", "--reads", "40",
        "--out", str(report),
    ]) == 0
    capsys.readouterr()
    assert main(["--no-ledger", "analyze", str(report)]) == 0
    out = capsys.readouterr().out
    assert "root bottleneck" in out


def test_analyze_bad_inputs_exit_cleanly(tmp_path, capsys):
    assert main(["--no-ledger", "analyze", str(tmp_path / "absent.json")]) == 2
    assert "cannot read" in capsys.readouterr().err
    bad = tmp_path / "bad.json"
    bad.write_text("not json at all")
    assert main(["--no-ledger", "analyze", str(bad)]) == 2
    assert "not JSON" in capsys.readouterr().err


def _bench_argv(tmp_path, *extra):
    return [
        "--no-ledger", "bench", "--out-dir", str(tmp_path),
        "--probes", "markdup_cycles_per_base",
        "--reads", "40", "--psize", "2000",
        "--repeats", "1", "--warmup", "0", *extra,
    ]


def test_bench_writes_and_compares(tmp_path, capsys):
    import json

    assert main(_bench_argv(tmp_path)) == 0
    baseline = tmp_path / "BENCH_1.json"
    assert baseline.exists()
    from repro.obs import BENCH_SCHEMA_VERSION

    data = json.loads(baseline.read_text())
    assert data["schema_version"] == BENCH_SCHEMA_VERSION
    assert "markdup_cycles_per_base" in data["probes"]
    assert data["manifest"]["config_digest"]
    capsys.readouterr()

    # Same config, same deterministic cycles: compare passes.
    assert main(_bench_argv(
        tmp_path, "--compare", str(baseline), "--no-write"
    )) == 0
    assert "0 regression(s)" in capsys.readouterr().out


def test_bench_compare_flags_injected_regression(tmp_path, capsys):
    import json

    assert main(_bench_argv(tmp_path)) == 0
    baseline = tmp_path / "BENCH_1.json"
    # Shrink the baseline 30%: the (unchanged) current run now reads as a
    # >=20% regression on a zero-IQR lower-is-better probe.
    data = json.loads(baseline.read_text())
    probe = data["probes"]["markdup_cycles_per_base"]
    for key in ("median", "q1", "q3"):
        probe[key] *= 0.7
    probe["samples"] = [s * 0.7 for s in probe["samples"]]
    baseline.write_text(json.dumps(data))
    capsys.readouterr()

    assert main(_bench_argv(
        tmp_path, "--compare", str(baseline), "--no-write"
    )) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # Report-only mode prints the regression but exits zero (CI default).
    assert main(_bench_argv(
        tmp_path, "--compare", str(baseline), "--no-write", "--report-only"
    )) == 0


def test_bench_unknown_probe_exits_cleanly(tmp_path, capsys):
    assert main([
        "--no-ledger", "bench", "--out-dir", str(tmp_path),
        "--probes", "no_such_probe", "--repeats", "1", "--warmup", "0",
        "--reads", "40", "--psize", "2000",
    ]) == 2
    err = capsys.readouterr().err
    assert "unknown probes" in err and "Traceback" not in err


def test_bench_bad_baseline_exits_cleanly(tmp_path, capsys):
    missing = tmp_path / "missing.json"
    assert main(_bench_argv(
        tmp_path, "--compare", str(missing), "--no-write"
    )) == 2
    assert "cannot read baseline" in capsys.readouterr().err


def test_cli_records_runs_in_ledger(tmp_path, capsys):
    import json

    ledger = tmp_path / "ledger.jsonl"
    assert main([
        "--ledger", str(ledger),
        "profile", "--stage", "markdup", "--reads", "40",
    ]) == 0
    records = [
        json.loads(line) for line in ledger.read_text().splitlines()
    ]
    events = [record["event"] for record in records]
    assert events[0] == "run.start"
    assert "profile.report" in events
    assert "cli.exit" in events
    assert events[-1] == "run.end"
    start = records[0]
    assert start["manifest"]["workload"] == "profile"
    run_id = start["run_id"]
    assert all(record["run_id"] == run_id for record in records)


# -- multi-device sharding (DESIGN.md §3.7) ------------------------------------------


def _simulate(tmp_path):
    fasta = tmp_path / "ref.fa"
    sam = tmp_path / "reads.sam"
    assert main([
        "--no-ledger", "simulate", "--fasta", str(fasta), "--sam", str(sam),
        "--reads", "60", "--read-length", "50", "--seed", "5",
        "--chromosomes", "21",
    ]) == 0
    return fasta, sam


def test_preprocess_devices_bit_identical_output(tmp_path, capsys):
    """The CLI-level invariant: --devices N writes byte-identical SAM."""
    fasta, sam = _simulate(tmp_path)
    outs = {}
    for devices in (1, 2):
        out = tmp_path / f"tagged_d{devices}.sam"
        assert main([
            "--no-ledger", "preprocess", "--fasta", str(fasta),
            "--sam", str(sam), "--out", str(out), "--psize", "1000",
            "--devices", str(devices), "--workers", "2",
        ]) == 0
        outs[devices] = out.read_text()
    assert outs[2] == outs[1]
    out = capsys.readouterr().out
    assert "devices=2" in out
    assert "device 0:" in out and "device 1:" in out


def test_analyze_sharding_reads_the_ledger(tmp_path, capsys):
    fasta, sam = _simulate(tmp_path)
    ledger = tmp_path / "ledger.jsonl"
    assert main([
        "--ledger", str(ledger), "preprocess", "--fasta", str(fasta),
        "--sam", str(sam), "--out", str(tmp_path / "tagged.sam"),
        "--psize", "1000", "--devices", "2",
    ]) == 0
    capsys.readouterr()
    assert main(["--ledger", str(ledger), "analyze", "--sharding"]) == 0
    out = capsys.readouterr().out
    assert "sharding analysis: metadata" in out
    assert "what-if" in out


def test_analyze_sharding_empty_ledger_exits_cleanly(tmp_path, capsys):
    ledger = tmp_path / "empty.jsonl"
    assert main(["--ledger", str(ledger), "analyze", "--sharding"]) == 2
    assert "no shard.run events" in capsys.readouterr().err


def test_analyze_needs_report_or_sharding(capsys):
    assert main(["--no-ledger", "analyze"]) == 2
    assert "REPORT_JSON, --sharding, --storage, or --critical-path" in (
        capsys.readouterr().err
    )


def test_bench_refuses_mismatched_topology(tmp_path, capsys):
    assert main(_bench_argv(tmp_path, "--devices", "2")) == 0
    baseline = tmp_path / "BENCH_1.json"
    capsys.readouterr()

    # Same probes, different topology: refused outright, exit 2.
    assert main(_bench_argv(
        tmp_path, "--devices", "4", "--compare", str(baseline), "--no-write"
    )) == 2
    out = capsys.readouterr().out
    assert "refusing to compare across topologies" in out
    assert "devices: 2 vs 4" in out

    # --report-only downgrades the refusal to a printed note.
    assert main(_bench_argv(
        tmp_path, "--devices", "4", "--compare", str(baseline),
        "--no-write", "--report-only",
    )) == 0


def test_bench_rejects_nonpositive_topology(tmp_path, capsys):
    assert main(_bench_argv(tmp_path, "--devices", "0", "--no-write")) == 2
    assert "must be >= 1" in capsys.readouterr().err


# -- repro serve --------------------------------------------------------------------


SERVE_ARGV = [
    "serve", "--tenants", "3", "--jobs", "5", "--reads", "50",
    "--psize", "800", "--mean-gap", "10000", "--seed", "3",
]


def test_serve_runs_and_records_ledger(tmp_path, capsys):
    from repro.obs.ledger import RunLedger

    ledger = tmp_path / "ledger.jsonl"
    assert main(["--ledger", str(ledger)] + SERVE_ARGV) == 0
    out = capsys.readouterr().out
    assert "serve: clock" in out
    assert "tenant" in out
    records = RunLedger(str(ledger))
    done = records.events("serve.job.done")
    assert done and all(record["latency_cycles"] > 0 for record in done)
    assert records.events("serve.dispatch")
    assert records.events("serve.run")


def test_serve_summary_is_deterministic(capsys):
    def run():
        assert main(["--no-ledger"] + SERVE_ARGV) == 0
        out = capsys.readouterr().out
        # everything but the host wall-time line is virtual, hence exact
        return [line for line in out.splitlines() if "host" not in line]

    assert run() == run()


def test_serve_drain_resume_flag(capsys):
    assert main(["--no-ledger"] + SERVE_ARGV + ["--drain-at", "3"]) == 0
    out = capsys.readouterr().out
    assert "drained at clock" in out
    assert "resuming" in out
    assert "5 admitted" in out and "5 completed" in out


def test_serve_with_fault_plan(capsys):
    assert main(
        ["--no-ledger"] + SERVE_ARGV
        + ["--inject-faults", "transfer_error:1@serve.wave",
           "--max-retries", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "fault plan: transfer_error" in out
    assert "1 retries" in out or "retries" in out


# -- in-storage filtering (DESIGN.md §3.10) ------------------------------------------


def test_preprocess_storage_filter_bit_identical_output(tmp_path, capsys):
    """--storage-filter changes transfer accounting, never output bytes."""
    fasta, sam = _simulate(tmp_path)
    outs = {}
    for flag in (False, True):
        out = tmp_path / f"tagged_sf{int(flag)}.sam"
        argv = [
            "--no-ledger", "preprocess", "--fasta", str(fasta),
            "--sam", str(sam), "--out", str(out), "--psize", "1000",
            "--devices", "2",
        ]
        if flag:
            argv.append("--storage-filter")
        assert main(argv) == 0
        outs[flag] = out.read_text()
    assert outs[True] == outs[False]
    out = capsys.readouterr().out
    assert "storage filter:" in out
    assert "pruned in-SSD" in out


def test_analyze_storage_reads_the_ledger(tmp_path, capsys):
    fasta, sam = _simulate(tmp_path)
    ledger = tmp_path / "ledger.jsonl"
    assert main([
        "--ledger", str(ledger), "preprocess", "--fasta", str(fasta),
        "--sam", str(sam), "--out", str(tmp_path / "tagged.sam"),
        "--psize", "1000", "--devices", "2", "--storage-filter",
    ]) == 0
    capsys.readouterr()
    assert main(["--ledger", str(ledger), "analyze", "--storage"]) == 0
    out = capsys.readouterr().out
    assert "storage analysis: metadata" in out
    assert "what-if" in out
    assert "pcie4" in out


def test_analyze_storage_empty_ledger_exits_cleanly(tmp_path, capsys):
    ledger = tmp_path / "empty.jsonl"
    assert main(["--ledger", str(ledger), "analyze", "--storage"]) == 2
    assert "no storage.run events" in capsys.readouterr().err


def test_analyze_storage_unversioned_ledger_exits_cleanly(tmp_path, capsys):
    """Satellite: records missing schema_version refuse cleanly (exit 2,
    no traceback)."""
    import json

    ledger = tmp_path / "old.jsonl"
    ledger.write_text(json.dumps({
        "run_id": "r1", "event": "storage.run", "stage": "metadata",
    }) + "\n")
    assert main(["--ledger", str(ledger), "analyze", "--storage"]) == 2
    err = capsys.readouterr().err
    assert "schema_version" in err


def test_serve_storage_filter_flag(tmp_path, capsys):
    from repro.obs.ledger import RunLedger

    ledger = tmp_path / "ledger.jsonl"
    assert main(
        ["--ledger", str(ledger)] + SERVE_ARGV + ["--storage-filter"]
    ) == 0
    out = capsys.readouterr().out
    assert "storage filter:" in out
    records = RunLedger(str(ledger))
    assert records.events("storage.wave")
    assert records.events("storage.run")
    capsys.readouterr()
    assert main(["--ledger", str(ledger), "analyze", "--storage"]) == 0
    assert "storage analysis: serve" in capsys.readouterr().out
