"""Unit tests for the ReadToBases module (the hardware ReadExplode)."""


from repro.genomics.cigar import Cigar, encode_elements
from repro.genomics.sequences import encode_sequence
from repro.hw.flit import DEL, INS, item_flits, scalar_flit
from repro.hw.modules import ReadToBases

from hw_harness import drive


def explode_hw(reads, with_qual=True, emit_clips=False):
    """reads: list of (pos, cigar_text, seq_text, qual list)."""
    pos_flits = []
    cigar_flits = []
    seq_flits = []
    qual_flits = []
    for pos, cigar_text, seq_text, qual in reads:
        pos_flits.append(scalar_flit(pos))
        cigar_flits.extend(item_flits(encode_elements(Cigar.parse(cigar_text))))
        seq_flits.extend(item_flits(encode_sequence(seq_text).tolist()))
        if qual is not None:
            qual_flits.extend(item_flits(qual))
    module = ReadToBases("r2b", with_qual=with_qual, emit_clips=emit_clips)
    inputs = {"pos": pos_flits, "cigar": cigar_flits, "seq": seq_flits}
    if with_qual:
        inputs["qual"] = qual_flits
    out, stats = drive(module, inputs)
    return out["out"], stats, module


def group_items(flits):
    items, current = [], []
    for flit in flits:
        if flit.fields:
            current.append(flit)
        if flit.last:
            items.append(current)
            current = []
    return items


def test_paper_figure3_example():
    """Figure 3: POS=104, CIGAR=2S3M1I1M1D2M, SEQ=AGGTAAACA, QUAL=##9>>AAB?."""
    qual = [ord(c) - 33 for c in "##9>>AAB?"]
    out, _, _ = explode_hw([(104, "2S3M1I1M1D2M", "AGGTAAACA", qual)])
    flits = [f for f in out if f.fields]
    assert len(flits) == 8
    positions = [f["pos"] for f in flits]
    assert positions == [104, 105, 106, INS, 107, 108, 109, 110]
    assert flits[3]["op"] == "I"
    assert flits[5]["op"] == "D"
    assert flits[5]["base"] is DEL
    assert flits[5]["qual"] is DEL
    bases = [f["base"] for f in flits[:3]]
    assert bases == encode_sequence("GTA").tolist()
    # Quality of the first emitted base is the 3rd char ('9'): clips dropped.
    assert flits[0]["qual"] == ord("9") - 33


def test_read_index_includes_clips():
    out, _, _ = explode_hw([(10, "2S3M", "AAGGG", [30] * 5)])
    flits = [f for f in out if f.fields]
    assert [f["ridx"] for f in flits] == [2, 3, 4]


def test_emit_clips_mode():
    out, _, _ = explode_hw([(10, "2S2M", "AAGG", [30] * 4)], emit_clips=True)
    flits = [f for f in out if f.fields]
    assert [f["op"] for f in flits] == ["S", "S", "M", "M"]
    assert [f["ridx"] for f in flits] == [0, 1, 2, 3]
    assert "pos" not in flits[0]


def test_item_boundaries_per_read():
    reads = [
        (0, "3M", "ACG", [30, 30, 30]),
        (9, "1M1I1M", "TTT", [31, 31, 31]),
    ]
    out, _, module = explode_hw(reads)
    items = group_items(out)
    assert len(items) == 2
    assert module.reads_exploded == 2
    assert [f["pos"] for f in items[0]] == [0, 1, 2]
    assert [f["pos"] for f in items[1]] == [9, INS, 10]


def test_without_qual():
    out, _, _ = explode_hw([(0, "2M", "AC", None)], with_qual=False)
    flits = [f for f in out if f.fields]
    assert all("qual" not in f for f in flits)


def test_positions_monotonic_for_m_and_d():
    out, _, _ = explode_hw([(100, "3M2D4M1I2M", "A" * 10, [30] * 10)])
    positions = [f["pos"] for f in out if f.fields and f["pos"] is not INS]
    assert positions == sorted(positions)
    assert positions == list(range(100, 111))


def test_throughput_near_one_base_per_cycle():
    seq = "A" * 200
    out, stats, _ = explode_hw([(0, "200M", seq, [30] * 200)])
    flits = [f for f in out if f.fields]
    assert len(flits) == 200
    # Streaming at ~1 bp/cycle with modest per-read overhead.
    assert stats.cycles < 280
