"""Unit tests for the columnar Table and its relational verbs."""

import numpy as np
import pytest

from repro.tables.schema import ColumnSpec, Schema
from repro.tables.table import Table

SCHEMA = Schema.of(K="uint32", V="int64")


def make_table(keys, vals):
    return Table.from_columns(SCHEMA, K=keys, V=vals)


def test_from_rows_and_row_access():
    schema = Schema.of(POS="uint32", SEQ="uint8[]")
    table = Table.from_rows(schema, [
        {"POS": 5, "SEQ": [0, 1]},
        {"POS": 9, "SEQ": [2]},
    ])
    assert table.num_rows == 2
    row = table.row(1)
    assert row["POS"] == 9
    assert row["SEQ"].tolist() == [2]


def test_row_out_of_range():
    table = make_table([1], [2])
    with pytest.raises(IndexError):
        table.row(5)


def test_missing_column_data_rejected():
    with pytest.raises(ValueError):
        Table(SCHEMA, {"K": np.array([1], dtype=np.uint32)}, 1)


def test_column_length_mismatch_rejected():
    with pytest.raises(ValueError):
        Table(SCHEMA, {
            "K": np.array([1], dtype=np.uint32),
            "V": np.array([1, 2], dtype=np.int64),
        }, 1)


def test_select_projects_columns():
    table = make_table([1, 2], [10, 20])
    out = table.select(["V"])
    assert out.schema.names == ("V",)
    assert out.column("V").tolist() == [10, 20]


def test_where_predicate():
    table = make_table([1, 2, 3, 4], [10, 20, 30, 40])
    out = table.where(lambda row: row["V"] > 15)
    assert out.column("K").tolist() == [2, 3, 4]


def test_where_mask():
    table = make_table([1, 2, 3], [10, 20, 30])
    out = table.where_mask([True, False, True])
    assert out.column("V").tolist() == [10, 30]


def test_where_mask_length_check():
    with pytest.raises(ValueError):
        make_table([1], [2]).where_mask([True, False])


def test_limit_offset_count():
    table = make_table(list(range(10)), list(range(10)))
    out = table.limit(3, offset=4)
    assert out.column("K").tolist() == [4, 5, 6]


def test_limit_beyond_end():
    table = make_table([1, 2], [3, 4])
    assert table.limit(10, offset=1).num_rows == 1
    assert table.limit(10, offset=5).num_rows == 0


def test_sort_by_is_stable():
    schema = Schema.of(A="uint32", B="uint32")
    table = Table.from_columns(schema, A=[2, 1, 2, 1], B=[0, 1, 2, 3])
    out = table.sort_by(["A"])
    assert out.column("B").tolist() == [1, 3, 0, 2]


def test_sort_by_two_keys():
    schema = Schema.of(A="uint32", B="uint32")
    table = Table.from_columns(schema, A=[2, 1, 2, 1], B=[1, 9, 0, 2])
    out = table.sort_by(["A", "B"])
    assert list(zip(out.column("A").tolist(), out.column("B").tolist())) == [
        (1, 2), (1, 9), (2, 0), (2, 1)
    ]


def test_concat():
    a = make_table([1], [10])
    b = make_table([2], [20])
    out = a.concat(b)
    assert out.column("K").tolist() == [1, 2]


def test_concat_schema_mismatch():
    a = make_table([1], [10])
    b = Table.from_columns(Schema.of(X="uint32", V="int64"), X=[1], V=[1])
    with pytest.raises(ValueError):
        a.concat(b)


def test_with_column():
    table = make_table([1, 2], [10, 20])
    out = table.with_column(ColumnSpec("W", "int64"), [7, 8])
    assert out.column("W").tolist() == [7, 8]
    with pytest.raises(ValueError):
        out.with_column(ColumnSpec("W", "int64"), [0, 0])


def test_rename():
    table = make_table([1], [10])
    out = table.rename({"K": "KEY"})
    assert out.schema.names == ("KEY", "V")
    assert out.column("KEY").tolist() == [1]


def test_inner_join():
    left = make_table([1, 2, 3], [10, 20, 30])
    right = Table.from_columns(Schema.of(K="uint32", W="int64"), K=[2, 3, 4], W=[200, 300, 400])
    out = left.join(right, on="K", how="inner")
    assert out.column("K").tolist() == [2, 3]
    assert out.column("W").tolist() == [200, 300]


def test_left_join_fills_nulls():
    left = make_table([1, 2], [10, 20])
    right = Table.from_columns(Schema.of(K="uint32", W="int64"), K=[2], W=[200])
    out = left.join(right, on="K", how="left")
    assert out.column("K").tolist() == [1, 2]
    assert out.column("W").tolist() == [0, 200]


def test_outer_join_keeps_both_sides():
    left = make_table([1], [10])
    right = Table.from_columns(Schema.of(K="uint32", W="int64"), K=[9], W=[90])
    out = left.join(right, on="K", how="outer")
    assert sorted(out.column("K").tolist()) == [1, 9]


def test_join_collision_suffix():
    left = make_table([1], [10])
    right = make_table([1], [99])
    out = left.join(right, on="K", how="inner")
    assert out.column("V").tolist() == [10]
    assert out.column("V_R").tolist() == [99]


def test_join_invalid_kind():
    with pytest.raises(ValueError):
        make_table([1], [1]).join(make_table([1], [1]), on="K", how="cross")


def test_group_by_sum_count():
    schema = Schema.of(G="uint8", V="int64")
    table = Table.from_columns(schema, G=[1, 1, 2], V=[10, 20, 30])
    out = table.group_by(["G"], {"total": ("sum", "V"), "n": ("count", "V")})
    rows = {row["G"]: row for row in out.rows()}
    assert rows[1]["total"] == 30 and rows[1]["n"] == 2
    assert rows[2]["total"] == 30 and rows[2]["n"] == 1


def test_group_by_unknown_agg():
    with pytest.raises(ValueError):
        make_table([1], [1]).group_by(["K"], {"x": ("median", "V")})


def test_aggregate():
    table = make_table([1, 2, 3], [10, 20, 30])
    assert table.aggregate("sum", "V") == 60
    assert table.aggregate("count", "V") == 3
    assert table.aggregate("min", "V") == 10
    assert table.aggregate("max", "V") == 30


def test_pos_explode():
    schema = Schema.of(START="uint32", ARR="uint8[]")
    table = Table.from_columns(schema, START=[100, 200], ARR=[[1, 2, 3], [4]])
    out = table.pos_explode("ARR", "START")
    assert out.column("POS").tolist() == [100, 101, 102, 200]
    assert out.column("VAL").tolist() == [1, 2, 3, 4]


def test_pos_explode_requires_array_column():
    with pytest.raises(ValueError):
        make_table([1], [1]).pos_explode("K", "V")


def test_rows_iteration():
    table = make_table([1, 2], [10, 20])
    assert [row["V"] for row in table.rows()] == [10, 20]
    assert len(table) == 2
