"""Unit tests for the Stream ALU and Fork modules."""

import pytest

from repro.hw.flit import Flit, item_flits
from repro.hw.modules import Fork, StreamAlu

from hw_harness import drive, values


def test_unary_op():
    alu = StreamAlu("a", op="NEG", field="value")
    out, _ = drive(alu, {"in": item_flits([1, -2, 3])})
    assert values(out["out"]) == [-1, 2, -3]


def test_binary_with_constant():
    alu = StreamAlu("a", op="ADD", field="value", constant=10)
    out, _ = drive(alu, {"in": item_flits([1, 2])})
    assert values(out["out"]) == [11, 12]


def test_binary_with_other_field():
    alu = StreamAlu("a", op="SUB", field="x", other_field="y", out_field="d")
    flits = [Flit({"x": 9, "y": 4}, last=True)]
    out, _ = drive(alu, {"in": flits})
    assert values(out["out"], "d") == [5]


def test_cmp_against_constant():
    alu = StreamAlu("a", op="CMP", field="value", constant=3, out_field="eq")
    out, _ = drive(alu, {"in": item_flits([3, 4, 3])})
    assert values(out["out"], "eq") == [1, 0, 1]


def test_two_stream_mode():
    alu = StreamAlu("a", op="ADD", field="value", two_streams=True)
    out, _ = drive(alu, {"a": item_flits([1, 2]), "b": item_flits([10, 20])})
    assert values(out["out"]) == [11, 22]


def test_masked_alu_passes_unmasked_through():
    alu = StreamAlu("a", op="NEG", field="value", mask_field="m")
    flits = [Flit({"value": 5, "m": 1}), Flit({"value": 7, "m": 0}, last=True)]
    out, _ = drive(alu, {"in": flits})
    assert values(out["out"]) == [-5, 7]


def test_preserves_other_fields_and_last():
    alu = StreamAlu("a", op="ADD", field="value", constant=1)
    flits = [Flit({"value": 1, "tag": "t"}, last=True)]
    out, _ = drive(alu, {"in": flits})
    assert out["out"][0]["tag"] == "t"
    assert out["out"][0].last


def test_boundary_flits_pass_through():
    alu = StreamAlu("a", op="ADD", field="value", constant=1)
    out, _ = drive(alu, {"in": [Flit({}, last=True)]})
    assert out["out"][0].last and not out["out"][0].fields


def test_invalid_op():
    with pytest.raises(ValueError):
        StreamAlu("a", op="FMA", field="value", constant=1)


def test_binary_needs_one_operand_source():
    with pytest.raises(ValueError):
        StreamAlu("a", op="ADD", field="value")
    with pytest.raises(ValueError):
        StreamAlu("a", op="ADD", field="value", constant=1, other_field="b")


def test_fork_replicates_to_all_ports():
    fork = Fork("f", ports=3)
    flits = item_flits([1, 2, 3])
    out, _ = drive(fork, {"in": flits}, out_ports=("out0", "out1", "out2"))
    for port in ("out0", "out1", "out2"):
        assert values(out[port]) == [1, 2, 3]
        assert out[port][-1].last


def test_fork_copies_are_independent():
    fork = Fork("f", ports=2)
    flits = [Flit({"v": 1}, last=True)]
    out, _ = drive(fork, {"in": flits}, out_ports=("out0", "out1"))
    out["out0"][0].fields["v"] = 99
    assert out["out1"][0]["v"] == 1


def test_fork_port_validation():
    with pytest.raises(ValueError):
        Fork("f", ports=1)
