"""Tests for the run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    RunLedger,
    RunManifest,
    active_run,
    active_run_id,
    config_digest,
    record_event,
    run_context,
)


def _manifest(**overrides):
    defaults = dict(
        workload="test", config={"reads": 40, "psize": 2000}, seed=7,
        pipelines=4, workers=1, mode="event",
    )
    defaults.update(overrides)
    return RunManifest(**defaults)


class TestManifest:
    def test_digest_is_stable_under_key_order(self):
        assert config_digest({"a": 1, "b": 2}) == config_digest({"b": 2, "a": 1})

    def test_digest_differs_on_value_change(self):
        assert config_digest({"reads": 40}) != config_digest({"reads": 41})

    def test_run_ids_are_unique(self):
        assert _manifest().run_id != _manifest().run_id

    def test_package_version_autofilled(self):
        from repro import __version__

        assert _manifest().package_version == __version__

    def test_host_info_present(self):
        manifest = _manifest()
        assert manifest.host["python"]
        assert manifest.host["cpus"] >= 1

    def test_round_trip(self):
        manifest = _manifest()
        rebuilt = RunManifest.from_dict(manifest.to_dict())
        assert rebuilt.run_id == manifest.run_id
        assert rebuilt.digest == manifest.digest
        assert rebuilt.config == manifest.config
        assert rebuilt.seed == 7 and rebuilt.mode == "event"


class TestLedger:
    def test_append_and_read(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append({"event": "x", "value": 1})
        ledger.append({"event": "y", "value": 2})
        records = ledger.read()
        assert [r["event"] for r in records] == ["x", "y"]
        assert all(r["schema"] == LEDGER_SCHEMA_VERSION for r in records)

    def test_read_missing_file_is_empty(self, tmp_path):
        assert RunLedger(str(tmp_path / "nope.jsonl")).read() == []

    def test_malformed_lines_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n')
        assert [r["event"] for r in RunLedger(str(path)).read()] == ["ok"]

    def test_creates_parent_directory(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "deep" / "dir" / "ledger.jsonl"))
        ledger.append({"event": "x"})
        assert ledger.read()

    def test_records_are_json_lines(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.record(_manifest(), "run.start")
        lines = (tmp_path / "ledger.jsonl").read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["event"] == "run.start"
        assert record["manifest"]["config_digest"]

    def test_runs_grouped_by_run_id(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        first, second = _manifest(), _manifest()
        ledger.record(first, "run.start")
        ledger.record(second, "run.start")
        ledger.record(first, "run.end")
        grouped = ledger.runs()
        assert len(grouped[first.run_id]) == 2
        assert len(grouped[second.run_id]) == 1


class TestRunContext:
    def test_start_and_end_recorded(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        manifest = _manifest()
        with run_context(manifest, ledger):
            record_event("wave", cycles=123)
        events = [r["event"] for r in ledger.read()]
        assert events == ["run.start", "wave", "run.end"]
        assert all(r["run_id"] == manifest.run_id for r in ledger.read())

    def test_error_recorded_and_reraised(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        with pytest.raises(ValueError):
            with run_context(_manifest(), ledger):
                raise ValueError("boom")
        events = [r["event"] for r in ledger.read()]
        assert events == ["run.start", "run.error"]
        assert "boom" in ledger.read()[-1]["error"]

    def test_context_cleared_on_exit(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        with run_context(_manifest(), ledger):
            assert active_run() is not None
            assert active_run_id()
        assert active_run() is None
        assert active_run_id() is None

    def test_record_event_without_context_is_noop(self, tmp_path):
        record_event("orphan", value=1)  # must not raise or write anywhere
        assert not list(tmp_path.iterdir())

    def test_scheduler_records_waves_under_context(self, tmp_path, workload):
        from repro.accel.scheduler import MarkdupWaveDriver, run_partitioned

        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        with run_context(_manifest(), ledger):
            _results, stats = run_partitioned(
                MarkdupWaveDriver(), workload.partitions, 4
            )
        events = [r["event"] for r in ledger.read()]
        assert events.count("scheduler.wave") == stats.waves
        assert "scheduler.run" in events
        run_record = next(
            r for r in ledger.read() if r["event"] == "scheduler.run"
        )
        assert run_record["total_cycles"] == stats.total_cycles
        assert run_record["stage"] == "markdup"


class TestSchemaVersion:
    def test_appended_records_carry_both_version_keys(self, tmp_path):
        """v2 stamps the explicit ``schema_version`` alongside the
        historical ``schema`` key, both at the current version."""
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append({"event": "x"})
        record = ledger.read()[0]
        assert record["schema"] == LEDGER_SCHEMA_VERSION
        assert record["schema_version"] == LEDGER_SCHEMA_VERSION

    def test_record_schema_version_reads_either_key(self):
        from repro.obs.ledger import record_schema_version

        assert record_schema_version({"schema_version": 2}) == 2
        assert record_schema_version({"schema": 1}) == 1
        # the explicit key wins when both are present
        assert record_schema_version({"schema": 1, "schema_version": 3}) == 3

    def test_record_schema_version_defaults_v1(self):
        from repro.obs.ledger import record_schema_version

        assert record_schema_version({}) == 1
        assert record_schema_version({"schema": "garbage"}) == 1

    def test_old_ledger_files_still_read(self, tmp_path):
        """A v1 ledger (no schema_version, extra unknown keys) reads
        cleanly — readers tolerate keys they do not know."""
        path = tmp_path / "old.jsonl"
        path.write_text(
            '{"schema": 1, "event": "serve.job.done", "job": 0, '
            '"someday_key": {"nested": true}}\n'
            '{"event": "versionless", "mystery": [1, 2, 3]}\n'
        )
        records = RunLedger(str(path)).read()
        assert [r["event"] for r in records] == [
            "serve.job.done", "versionless"
        ]

    def test_non_dict_json_lines_skipped(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('[1, 2, 3]\n"just a string"\n{"event": "ok"}\n')
        assert [r["event"] for r in RunLedger(str(path)).read()] == ["ok"]
