"""Tests for multi-device sharding (repro.accel.sharding).

The headline invariant under test: a sharded run is **bit-identical**
to the serial run — per-partition results AND simulated cycle
accounting — at every ``(devices, workers)`` combination, including
under injected faults and with work stealing engaged.  Host-side cache
hit/miss counts are the one deliberate exception (locality depends on
which device a wave lands on); the *modelled* SPM load cycles charge
the same either way, so they are asserted invariant too.
"""

import numpy as np
import pytest

from repro.accel.scheduler import (
    BqsrWaveDriver,
    MarkdupWaveDriver,
    MetadataWaveDriver,
    SpmImageCache,
    pack_waves,
    run_partitioned,
)
from repro.accel.sharding import (
    ShardedRunStats,
    plan_shards,
    reduce_bqsr_results,
    run_sharded,
    stable_shard_hash,
)
from repro.eval.workloads import make_workload
from repro.faults.plan import FaultPlan, FaultSpec, shard_fault_plan

BQSR_FIELDS = ("total_cycle", "total_context", "error_cycle", "error_context")

DEVICE_GRID = [
    (devices, workers) for devices in (1, 2, 4) for workers in (1, 4)
]


@pytest.fixture(scope="module")
def workload():
    """Enough partitions for multi-wave, multi-device schedules."""
    return make_workload(
        n_reads=120,
        read_length=60,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=1000,
        seed=105,
    )


@pytest.fixture(scope="module")
def metadata_serial(workload):
    driver = MetadataWaveDriver(reference=workload.reference)
    return run_partitioned(driver, workload.partitions, 2, workers=1)


@pytest.fixture(scope="module")
def markdup_serial(workload):
    driver = MarkdupWaveDriver()
    return run_partitioned(driver, workload.partitions, 1, workers=1)


@pytest.fixture(scope="module")
def bqsr_serial(workload):
    driver = BqsrWaveDriver(
        reference=workload.reference, read_length=workload.read_length
    )
    return run_partitioned(driver, workload.group_partitions, 4, workers=1)


def _assert_same_cycles(serial_stats, sharded):
    """The simulated half of the accounting must be topology-invariant."""
    assert isinstance(sharded, ShardedRunStats)
    assert sharded.waves == serial_stats.waves
    assert sharded.per_wave_cycles == serial_stats.per_wave_cycles
    assert sharded.total_cycles == serial_stats.total_cycles
    assert sharded.spm_load_cycles == serial_stats.spm_load_cycles
    assert sharded.cycles_including_load == serial_stats.cycles_including_load
    assert sharded.total_flits == serial_stats.total_flits


def _assert_metadata_identical(serial_res, sharded_res):
    assert set(sharded_res) == set(serial_res)
    for pid in serial_res:
        assert sharded_res[pid].nm == serial_res[pid].nm, str(pid)
        assert sharded_res[pid].md == serial_res[pid].md, str(pid)
        assert sharded_res[pid].uq == serial_res[pid].uq, str(pid)


def _assert_bqsr_identical(serial_res, sharded_res):
    assert set(sharded_res) == set(serial_res)
    for pid in serial_res:
        for field in BQSR_FIELDS:
            assert np.array_equal(
                getattr(sharded_res[pid], field), getattr(serial_res[pid], field)
            ), (str(pid), field)


# -- differential: devices x workers vs the serial schedule -------------------------


@pytest.mark.parametrize("devices,workers", DEVICE_GRID)
def test_metadata_sharded_bit_identical(workload, metadata_serial, devices, workers):
    serial_res, serial_stats = metadata_serial
    driver = MetadataWaveDriver(reference=workload.reference)
    sharded_res, stats = run_sharded(
        driver, workload.partitions, 2, devices=devices, workers=workers
    )
    assert serial_stats.waves > 1, "need a multi-wave schedule to compare"
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, sharded_res)
    assert stats.devices == devices


@pytest.mark.parametrize("devices,workers", DEVICE_GRID)
def test_markdup_sharded_bit_identical(workload, markdup_serial, devices, workers):
    serial_res, serial_stats = markdup_serial
    driver = MarkdupWaveDriver()
    sharded_res, stats = run_sharded(
        driver, workload.partitions, 1, devices=devices, workers=workers
    )
    _assert_same_cycles(serial_stats, stats)
    assert set(sharded_res) == set(serial_res)
    for pid in serial_res:
        assert sharded_res[pid].quality_sums == serial_res[pid].quality_sums


@pytest.mark.parametrize("devices,workers", DEVICE_GRID)
def test_bqsr_sharded_bit_identical(workload, bqsr_serial, devices, workers):
    serial_res, serial_stats = bqsr_serial
    driver = BqsrWaveDriver(
        reference=workload.reference, read_length=workload.read_length
    )
    sharded_res, stats = run_sharded(
        driver, workload.group_partitions, 4, devices=devices, workers=workers
    )
    _assert_same_cycles(serial_stats, stats)
    _assert_bqsr_identical(serial_res, sharded_res)


def test_sharded_smoke(workload, metadata_serial):
    """Fast single-topology differential for CI smoke jobs
    (``pytest -k test_sharded_smoke``)."""
    serial_res, serial_stats = metadata_serial
    driver = MetadataWaveDriver(reference=workload.reference)
    sharded_res, stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=2
    )
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, sharded_res)


# -- differential under injected faults ---------------------------------------------


@pytest.mark.parametrize("devices", (1, 2, 4))
def test_sharded_bit_identical_under_faults(workload, metadata_serial, devices):
    """Global fault slots fire on whichever device runs that wave, and
    the retry ladder still converges to the serial answer."""
    serial_res, serial_stats = metadata_serial
    driver = MetadataWaveDriver(reference=workload.reference)
    plan = FaultPlan(
        seed=7, specs=(FaultSpec("worker_crash", count=2, at=(0, 1)),)
    )
    sharded_res, stats = run_sharded(
        driver, workload.partitions, 2, devices=devices, workers=2,
        fault_plan=plan,
    )
    assert stats.faults_injected == 2
    assert stats.faults_by_kind == {"worker_crash": 2}
    assert stats.retries >= 2
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, sharded_res)


def test_sharded_bit_identical_under_timeout(workload, metadata_serial):
    serial_res, serial_stats = metadata_serial
    driver = MetadataWaveDriver(reference=workload.reference)
    plan = FaultPlan(
        seed=11, specs=(FaultSpec("wave_timeout", at=(0,)),)
    )
    sharded_res, stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=1,
        fault_plan=plan, wave_timeout=0.75,
    )
    assert stats.faults_injected == 1
    assert stats.watchdog_timeouts >= 1
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, sharded_res)


# -- work stealing ------------------------------------------------------------------


def test_range_policy_forces_a_steal(workload, metadata_serial):
    """The range policy front-loads the LPT order onto low devices, so
    the steal loop must engage — and results stay bit-identical."""
    serial_res, serial_stats = metadata_serial
    plan = plan_shards(workload.partitions, 2, devices=2, policy="range")
    assert plan.steals, "expected the range layout to trigger stealing"
    driver = MetadataWaveDriver(reference=workload.reference)
    sharded_res, stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=1, policy="range"
    )
    assert stats.steal_count == len(plan.steals)
    for steal in stats.steals:
        assert stats.per_device[steal.target].steals_in >= 1
        assert stats.per_device[steal.source].steals_out >= 1
    _assert_same_cycles(serial_stats, stats)
    _assert_metadata_identical(serial_res, sharded_res)


def test_steal_strictly_improves_makespan(workload):
    stolen = plan_shards(workload.partitions, 2, devices=2, policy="range")
    unstolen = plan_shards(
        workload.partitions, 2, devices=2, policy="range", steal=False
    )
    assert not unstolen.steals
    assert max(stolen.loads()) < max(unstolen.loads())
    assert sum(stolen.loads()) == sum(unstolen.loads())


# -- the shard planner --------------------------------------------------------------


def test_plan_shards_is_deterministic(workload):
    first = plan_shards(workload.partitions, 2, devices=3)
    second = plan_shards(workload.partitions, 2, devices=3)
    assert [w.device for w in first.waves] == [w.device for w in second.waves]
    assert first.steals == second.steals
    assert first.device_queues() == second.device_queues()


def test_plan_shards_preserves_global_packing(workload):
    """Sharding must never re-pack: every wave's composition is exactly
    the serial LPT packing's."""
    empty_pids, packed = pack_waves(workload.partitions, 2)
    plan = plan_shards(workload.partitions, 2, devices=4)
    assert plan.empty_pids == empty_pids
    assert len(plan.waves) == len(packed)
    for wave, packed_wave in zip(plan.waves, packed):
        assert [pid for pid, _p in wave.items] == [pid for pid, _p in packed_wave]


def test_plan_shards_queue_order_and_hash_homes(workload):
    plan = plan_shards(workload.partitions, 2, devices=2, steal=False)
    for device in range(2):
        queue = plan.device_queues()[device]
        assert queue == sorted(queue)  # global order within a queue
    for wave in plan.waves:
        assert wave.device == wave.home_device  # steal=False: nothing moved
        assert wave.home_device == stable_shard_hash(wave.items[0][0]) % 2


def test_plan_shards_rejects_bad_arguments(workload):
    with pytest.raises(ValueError, match="at least one device"):
        plan_shards(workload.partitions, 2, devices=0)
    with pytest.raises(ValueError, match="unknown shard policy"):
        plan_shards(workload.partitions, 2, devices=2, policy="striped")


def test_stable_shard_hash_is_value_based(workload):
    """The shard hash must depend only on the partition id's *value*
    (CRC32 of its rendered form), never on object identity or Python's
    per-process hash salt."""
    import zlib

    pid = next(iter(workload.partitions))[0]
    clone = type(pid)(pid.chrom, pid.segment, pid.read_group)
    assert clone is not pid
    assert stable_shard_hash(clone) == stable_shard_hash(pid)
    assert stable_shard_hash(pid) == zlib.crc32(str(pid).encode("utf-8"))


# -- fault-plan sharding ------------------------------------------------------------


def test_shard_fault_plan_places_by_actual_layout():
    plan = FaultPlan(
        seed=1, specs=(FaultSpec("worker_crash", count=2, at=(1, 2)),)
    )
    # device 0 runs global waves [0, 2]; device 1 runs [1, 3]
    shards = shard_fault_plan(plan, [[0, 2], [1, 3]])
    assert len(shards) == 2
    (spec0,) = shards[0].specs
    assert spec0.at == (1,)  # global wave 2 is device 0's local slot 1
    (spec1,) = shards[1].specs
    assert spec1.at == (0,)  # global wave 1 is device 1's local slot 0
    assert shards[0].seed == shards[1].seed == plan.seed


def test_shard_fault_plan_drops_out_of_range_targets():
    plan = FaultPlan(
        seed=2, specs=(FaultSpec("worker_crash", count=2, at=(0, 99)),)
    )
    shards = shard_fault_plan(plan, [[0], [1]])
    (spec0,) = shards[0].specs
    assert spec0.at == (0,) and spec0.count == 1
    assert shards[1].specs == ()


def test_shard_fault_plan_replicates_other_sites():
    plan = FaultPlan(
        seed=3,
        specs=(
            FaultSpec("transfer_error", site="runtime.transfer"),
            FaultSpec("worker_crash", at=(0,)),
        ),
    )
    shards = shard_fault_plan(plan, [[0], [1]])
    for shard in shards:
        assert any(s.site == "runtime.transfer" for s in shard.specs)
    assert any(s.site == "scheduler.wave" for s in shards[0].specs)
    assert not any(s.site == "scheduler.wave" for s in shards[1].specs)


def test_shard_fault_plan_rejects_empty_layout():
    with pytest.raises(ValueError, match="device queue"):
        shard_fault_plan(FaultPlan(seed=0, specs=()), [])


# -- per-device SPM caches ----------------------------------------------------------


def test_shared_cache_seeds_every_device(workload):
    """A warm shared cache reaches every device queue: the second
    sharded run re-simulates nothing, anywhere."""
    driver = MetadataWaveDriver(reference=workload.reference)
    cache = SpmImageCache()
    _cold, cold_stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=1, spm_cache=cache
    )
    assert cold_stats.spm_cache_misses > 0
    warm_res, warm_stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=1, spm_cache=cache
    )
    assert warm_stats.spm_cache_misses == 0
    assert warm_stats.spm_cache_hits > 0
    assert warm_stats.spm_cycles_saved > 0
    _assert_same_cycles(cold_stats, warm_stats)
    for pid in warm_res:
        assert warm_res[pid].nm is not None


def test_device_caches_absorb_into_shared(workload):
    """After a sharded run the shared cache holds every device's images
    (a later serial run replays them all)."""
    driver = MetadataWaveDriver(reference=workload.reference)
    cache = SpmImageCache()
    run_sharded(
        driver, workload.partitions, 2, devices=4, workers=1, spm_cache=cache
    )
    _res, serial_stats = run_partitioned(
        driver, workload.partitions, 2, spm_cache=cache
    )
    assert serial_stats.spm_cache_misses == 0


# -- sharded stats surface ----------------------------------------------------------


def test_sharded_stats_views(workload):
    driver = MetadataWaveDriver(reference=workload.reference)
    _res, stats = run_sharded(
        driver, workload.partitions, 2, devices=2, workers=1
    )
    assert stats.devices == 2
    utilization = stats.device_utilization()
    assert len(utilization) == 2
    assert max(utilization) == pytest.approx(1.0)
    assert all(0.0 <= u <= 1.0 for u in utilization)
    assert len(stats.plan_loads) == 2
    assert len(stats.device_busy_seconds) == 2
    assert len(stats.device_transfer_seconds) == 2
    assert all(b > 0 for b in stats.device_busy_seconds if b)
    assert stats.elapsed_seconds > 0
    assert stats.host_parallelism > 0
    # per-worker tallies are namespaced by device
    assert all(key.startswith("d") for key in stats.per_worker)


def test_run_sharded_rejects_zero_devices(workload):
    driver = MetadataWaveDriver(reference=workload.reference)
    with pytest.raises(ValueError, match="at least one device"):
        run_sharded(driver, workload.partitions, 2, devices=0)


# -- deterministic BQSR reduction ---------------------------------------------------


def test_reduce_bqsr_matches_serial_reduction(workload, bqsr_serial):
    """Reducing per-device BQSR shards gives the exact covariate tables
    the serial reduction gives — whichever devices the partitions ran
    on, the per-read-group sums are the same integers."""
    serial_res, _stats = bqsr_serial
    driver = BqsrWaveDriver(
        reference=workload.reference, read_length=workload.read_length
    )
    sharded_res, _sharded = run_sharded(
        driver, workload.group_partitions, 4, devices=4, workers=1
    )
    serial_tables = reduce_bqsr_results(serial_res, workload.read_length)
    sharded_tables = reduce_bqsr_results(sharded_res, workload.read_length)
    assert set(sharded_tables) == set(serial_tables)
    assert len(serial_tables) > 1, "need multiple read groups to reduce"
    for group in serial_tables:
        a, b = serial_tables[group], sharded_tables[group]
        for field in BQSR_FIELDS:
            assert np.array_equal(getattr(a, field), getattr(b, field)), (
                group, field,
            )
