"""Tests for the ``repro bench`` regression harness (repro.obs.bench)."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    BenchContext,
    BenchResult,
    Probe,
    ProbeResult,
    compare_results,
    next_bench_path,
    run_bench,
    write_bench_result,
)
from repro.obs.ledger import RunManifest


def _suite(values):
    """A fake deterministic suite: name -> constant sample value."""
    return {
        name: Probe(name, lambda _ctx, v=value: v, "unit", False)
        for name, value in values.items()
    }


def _context():
    # A non-None workload skips the (slow) build step for unit tests.
    return BenchContext(workload="stub")


def _result(values, samples=1):
    suite = _suite(values)
    return run_bench(
        _context(), repeats=samples, warmup=0, suite=suite,
        manifest=RunManifest(
            workload="bench", config={"fake": True}, seed=0,
            pipelines=1, workers=1, mode="event",
        ),
    )


class TestProbeResult:
    def test_median_and_iqr(self):
        result = ProbeResult("p", "u", False, [4.0, 1.0, 2.0, 3.0])
        assert result.median == 2.5
        assert result.q1 == 1.75
        assert result.q3 == 3.25
        assert result.iqr == pytest.approx(1.5)

    def test_single_sample_has_zero_iqr(self):
        result = ProbeResult("p", "u", False, [7.0])
        assert result.median == 7.0
        assert result.iqr == 0.0

    def test_round_trip(self):
        result = ProbeResult("p", "flits/s", True, [1.0, 2.0, 3.0])
        rebuilt = ProbeResult.from_dict("p", result.to_dict())
        assert rebuilt.samples == result.samples
        assert rebuilt.higher_is_better
        assert rebuilt.unit == "flits/s"


class TestRunBench:
    def test_collects_repeats_and_manifest(self):
        result = _result({"a": 5.0, "b": 2.0}, samples=3)
        assert set(result.probes) == {"a", "b"}
        assert result.probes["a"].samples == [5.0, 5.0, 5.0]
        assert result.manifest.workload == "bench"
        assert result.schema_version == BENCH_SCHEMA_VERSION

    def test_probe_selection(self):
        suite = _suite({"a": 1.0, "b": 2.0})
        result = run_bench(
            _context(), repeats=1, warmup=0, probes=["b"], suite=suite
        )
        assert set(result.probes) == {"b"}

    def test_unknown_probe_rejected(self):
        with pytest.raises(KeyError, match="unknown probes"):
            run_bench(
                _context(), repeats=1, warmup=0,
                probes=["nope"], suite=_suite({"a": 1.0}),
            )

    def test_warmup_samples_discarded(self):
        calls = []

        def probe(_ctx):
            calls.append(len(calls))
            return float(len(calls))

        suite = {"p": Probe("p", probe, "u", False)}
        result = run_bench(_context(), repeats=2, warmup=2, suite=suite)
        # Two warmup calls happen first, so recorded samples are 3rd/4th.
        assert result.probes["p"].samples == [3.0, 4.0]

    def test_render_mentions_probes(self):
        text = _result({"a": 5.0}).render()
        assert "a" in text and "median" in text


class TestBenchFiles:
    def test_write_numbers_sequentially(self, tmp_path):
        result = _result({"a": 1.0})
        first = write_bench_result(result, str(tmp_path))
        second = write_bench_result(result, str(tmp_path))
        assert first.endswith("BENCH_1.json")
        assert second.endswith("BENCH_2.json")
        assert next_bench_path(str(tmp_path)).endswith("BENCH_3.json")

    def test_json_schema_shape(self, tmp_path):
        path = write_bench_result(_result({"a": 1.5}, samples=2), str(tmp_path))
        data = json.loads(open(path).read())
        assert data["schema_version"] == BENCH_SCHEMA_VERSION
        assert data["manifest"]["config_digest"]
        probe = data["probes"]["a"]
        assert probe["median"] == 1.5
        assert "q1" in probe and "q3" in probe and "iqr" in probe

    def test_load_round_trip(self, tmp_path):
        result = _result({"a": 1.5})
        path = write_bench_result(result, str(tmp_path))
        loaded = BenchResult.load(path)
        assert loaded.probes["a"].median == 1.5
        assert loaded.manifest.digest == result.manifest.digest

    def test_schema_mismatch_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            BenchResult.from_dict({"schema_version": 99})


class TestCompare:
    def test_same_baseline_is_ok(self):
        result = _result({"a": 5.0, "b": 2.0})
        comparison = compare_results(result, result)
        assert comparison.ok
        assert not comparison.regressions

    def test_injected_regression_flags(self):
        baseline = _result({"cycles": 100.0})
        # 25% more cycles on a lower-is-better, zero-IQR probe.
        current = _result({"cycles": 125.0})
        comparison = compare_results(current, baseline, threshold=0.10)
        assert not comparison.ok
        assert [probe.name for probe in comparison.regressions] == ["cycles"]
        assert comparison.probes[0].delta == pytest.approx(0.25)

    def test_improvement_never_flags(self):
        baseline = _result({"cycles": 100.0})
        comparison = compare_results(_result({"cycles": 60.0}), baseline)
        assert comparison.ok
        assert comparison.probes[0].delta == pytest.approx(-0.4)

    def test_higher_is_better_direction(self):
        suite_hi = {
            "tput": Probe("tput", lambda _ctx: 0.0, "flits/s", True)
        }

        def make(value):
            suite = {
                "tput": Probe(
                    "tput", lambda _ctx, v=value: v, "flits/s", True
                )
            }
            return run_bench(_context(), repeats=1, warmup=0, suite=suite)

        del suite_hi
        comparison = compare_results(make(70.0), make(100.0), threshold=0.10)
        assert not comparison.ok  # throughput dropped 30%
        comparison = compare_results(make(130.0), make(100.0), threshold=0.10)
        assert comparison.ok  # throughput rose: an improvement

    def test_noise_guard_within_baseline_iqr(self):
        # Baseline is noisy: median 100, IQR spanning up to 130.  A current
        # median of 115 is >10% worse but inside what the baseline itself
        # produced, so it must not flag.
        baseline = BenchResult(
            manifest=_result({"x": 1.0}).manifest,
            probes={
                "host_time": ProbeResult(
                    "host_time", "s", False, [80.0, 100.0, 130.0]
                )
            },
        )
        current = BenchResult(
            manifest=baseline.manifest,
            probes={
                "host_time": ProbeResult("host_time", "s", False, [115.0])
            },
        )
        comparison = compare_results(current, baseline, threshold=0.10)
        assert comparison.ok
        assert comparison.probes[0].delta > 0.10  # worse, but within noise

    def test_probe_missing_from_baseline_skipped(self):
        baseline = _result({"a": 1.0})
        current = _result({"a": 1.0, "new_probe": 2.0})
        comparison = compare_results(current, baseline)
        assert comparison.missing == ["new_probe"]
        assert comparison.ok

    def test_digest_mismatch_noted(self):
        baseline = _result({"a": 1.0})
        current = run_bench(
            _context(), repeats=1, warmup=0, suite=_suite({"a": 1.0}),
            manifest=RunManifest(
                workload="bench", config={"fake": False}, seed=0,
                pipelines=1, workers=1, mode="event",
            ),
        )
        comparison = compare_results(current, baseline)
        assert not comparison.comparable
        assert any("digest" in note for note in comparison.notes)

    def test_render_reports_counts(self):
        result = _result({"a": 1.0})
        text = compare_results(result, result).render()
        assert "0 regression(s) across 1 compared probe(s)" in text

    def _topology_result(self, **config):
        base = {"fake": True, "devices": 2, "workers": 2, "sql_backend": "fast"}
        base.update(config)
        return run_bench(
            _context(), repeats=1, warmup=0, suite=_suite({"a": 1.0}),
            manifest=RunManifest(
                workload="bench", config=base, seed=0,
                pipelines=1, workers=1, mode="event",
            ),
        )

    def test_mismatched_topology_refused(self):
        baseline = self._topology_result(devices=1)
        current = self._topology_result(devices=4)
        comparison = compare_results(current, baseline)
        assert comparison.refused
        assert not comparison.ok
        assert not comparison.probes  # nothing was diffed
        assert any(
            "refusing to compare across topologies" in note
            and "devices: 1 vs 4" in note
            for note in comparison.notes
        )

    def test_every_topology_key_guards(self):
        baseline = self._topology_result()
        for key, other in (
            ("devices", 8), ("workers", 16), ("sql_backend", "python")
        ):
            comparison = compare_results(
                self._topology_result(**{key: other}), baseline
            )
            assert comparison.refused, key
            assert any(key in note for note in comparison.notes), key

    def test_matching_topology_still_compares(self):
        baseline = self._topology_result()
        comparison = compare_results(self._topology_result(), baseline)
        assert not comparison.refused
        assert comparison.ok
        assert [probe.name for probe in comparison.probes] == ["a"]

    def test_legacy_results_without_topology_keys_compare(self):
        # Pre-topology baselines never recorded devices/workers: they must
        # keep the digest-note behavior, not the hard refusal.
        baseline = _result({"a": 1.0})
        current = self._topology_result()
        comparison = compare_results(current, baseline)
        assert not comparison.refused
        assert not comparison.comparable  # digest still mismatches
        assert any("digest" in note for note in comparison.notes)

    def test_manifest_records_topology(self, workload):
        context = BenchContext(workload=workload, workers=3, devices=2)
        result = run_bench(
            context, repeats=1, warmup=0, suite=_suite({"a": 1.0})
        )
        assert result.manifest.config["workers"] == 3
        assert result.manifest.config["devices"] == 2


class TestRealProbes:
    def test_deterministic_cycle_probe_on_tiny_workload(self, workload):
        context = BenchContext(workload=workload, pipelines=4)
        result = run_bench(
            context, repeats=2, warmup=0,
            probes=["markdup_cycles_per_base"],
        )
        probe = result.probes["markdup_cycles_per_base"]
        assert probe.median > 0
        assert probe.iqr == 0.0  # simulated cycles are deterministic
        assert not probe.higher_is_better


class TestSqlBackendProbe:
    def test_stage_backend_seconds_shape(self, workload):
        from repro.obs.bench import sql_stage_backend_seconds

        seconds = sql_stage_backend_seconds(workload, "fast")
        assert sorted(seconds) == ["bqsr", "markdup", "metadata"]
        assert all(value >= 0.0 for value in seconds.values())

    def test_speedup_probe_and_manifest_config(self, workload):
        context = BenchContext(workload=workload, sql_backend="fast")
        result = run_bench(
            context, repeats=1, warmup=0, probes=["sql_backend_speedup"]
        )
        probe = result.probes["sql_backend_speedup"]
        assert probe.median > 1.0  # vectorized beats row-at-a-time
        assert probe.higher_is_better
        assert result.manifest.config["sql_backend"] == "fast"


# -- the scaling-curve observatory ---------------------------------------------------


from repro.obs.bench import (  # noqa: E402
    SWEEP_AXES,
    CurvePoint,
    SweepResult,
    compare_sweeps,
    parse_sweep,
    run_sweep,
)


def _scaling_suite():
    """Probes whose value depends on the topology: `linear` scales
    perfectly with devices, `flat` never scales."""
    return {
        "linear": Probe(
            "linear", lambda ctx: float(ctx.devices), "x", True
        ),
        "flat": Probe("flat", lambda ctx: 1.0, "x", True),
    }


def _sweep(axes="devices=1,2", suite=None, probes=None):
    return run_sweep(
        _context(), parse_sweep(axes),
        probes=probes, repeats=1, warmup=0,
        suite=suite if suite is not None else _scaling_suite(),
    )


class TestParseSweep:
    def test_two_axes(self):
        assert parse_sweep("devices=1,2;workers=1,2,4") == {
            "devices": [1, 2], "workers": [1, 2, 4],
        }

    def test_cross_separator(self):
        assert parse_sweep("devices=1,2×pipelines=2,4") == {
            "devices": [1, 2], "pipelines": [2, 4],
        }

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            parse_sweep("gpus=1,2")

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            parse_sweep("devices=1;devices=2")

    def test_missing_values_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            parse_sweep("devices=")

    def test_nonpositive_values_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            parse_sweep("devices=0,1")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError, match="empty sweep"):
            parse_sweep(" ; ")


class TestRunSweep:
    def test_cross_product_points(self):
        sweep = _sweep("devices=1,2;workers=1,2")
        assert len(sweep.points) == 4
        grid = {point.key() for point in sweep.points}
        assert (("devices", 2), ("workers", 1)) in grid
        assert sweep.probe_names == ["linear", "flat"]

    def test_probes_see_the_override(self):
        sweep = _sweep("devices=1,2")
        by_devices = {
            point.overrides["devices"]: point.probes["linear"].median
            for point in sweep.points
        }
        assert by_devices == {1: 1.0, 2: 2.0}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown sweep axes"):
            run_sweep(
                _context(), {"gpus": [1]}, repeats=1, warmup=0,
                suite=_scaling_suite(),
            )

    def test_axes_exported(self):
        assert set(SWEEP_AXES) == {"devices", "workers", "pipelines"}


class TestSweepResult:
    def test_series_holds_other_axes_at_base(self):
        sweep = _sweep("devices=1,2;workers=1,2")
        assert sweep.series("linear", "devices") == [(1, 1.0), (2, 2.0)]
        assert sweep.series("flat", "workers") == [(1, 1.0), (2, 1.0)]

    def test_efficiency_slope_flat_for_perfect_scaling(self):
        sweep = _sweep("devices=1,2,4")
        assert sweep.efficiency_slope("linear", "devices") == pytest.approx(0)
        # a non-scaling probe: efficiency 1 -> 0.25 over ratio 1 -> 4
        assert sweep.efficiency_slope("flat", "devices") == pytest.approx(
            (0.25 - 1.0) / 3.0
        )

    def test_slope_undefined_for_single_point(self):
        sweep = _sweep("devices=1")
        assert sweep.efficiency_slope("linear", "devices") is None

    def test_round_trip(self):
        sweep = _sweep("devices=1,2;workers=1,2")
        rebuilt = SweepResult.from_dict(sweep.to_dict())
        assert rebuilt.axes == sweep.axes
        assert rebuilt.probe_names == sweep.probe_names
        assert [p.key() for p in rebuilt.points] == [
            p.key() for p in sweep.points
        ]
        assert rebuilt.series("linear", "devices") == sweep.series(
            "linear", "devices"
        )

    def test_render_shows_points_and_slopes(self):
        text = _sweep("devices=1,2").render()
        assert "devices=1" in text and "devices=2" in text
        assert "slope linear/devices" in text

    def test_bench_result_carries_sweep(self):
        result = _result({"a": 1.0})
        result.sweep = _sweep("devices=1,2")
        rebuilt = BenchResult.from_dict(result.to_dict())
        assert rebuilt.sweep is not None
        assert rebuilt.sweep.axes == {"devices": [1, 2]}
        assert "slope linear/devices" in result.render()
        # sweepless results stay sweepless through the round trip
        plain = BenchResult.from_dict(_result({"a": 1.0}).to_dict())
        assert plain.sweep is None


class TestCompareSweeps:
    def test_identical_sweeps_ok(self):
        sweep = _sweep("devices=1,2")
        comparison = compare_sweeps(sweep, sweep, threshold=0.1)
        assert comparison.ok
        assert len(comparison.points) == 4  # 2 points x 2 probes
        assert comparison.slopes

    def test_sagging_point_flags(self):
        baseline = _sweep("devices=1,2")
        current = _sweep("devices=1,2")
        # sink one interior point 50%: endpoints unchanged
        sunk = current.points[1].probes["linear"]
        sunk.samples = [sample * 0.5 for sample in sunk.samples]
        comparison = compare_sweeps(current, baseline, threshold=0.1)
        assert not comparison.ok
        bad = [p for p in comparison.points if p.regression]
        assert [(p.label, p.probe) for p in bad] == [("devices=2", "linear")]

    def test_slope_regression_flags_even_when_points_pass(self):
        # A super-linear probe: a modest endpoint droop moves the
        # efficiency slope further than any per-point median, so only
        # the slope rule catches the bent curve.
        suite = {
            "quad": Probe(
                "quad", lambda ctx: float(ctx.devices ** 2), "x", True
            ),
        }
        baseline = _sweep("devices=1,4", suite=suite)
        current = _sweep("devices=1,4", suite=suite)
        drooped = current.points[1].probes["quad"]
        drooped.samples = [sample * 0.75 for sample in drooped.samples]
        comparison = compare_sweeps(current, baseline, threshold=0.3)
        point_failures = [p for p in comparison.points if p.regression]
        assert not point_failures
        slope_failures = [s for s in comparison.slopes if s.regression]
        assert [(s.probe, s.axis) for s in slope_failures] == [
            ("quad", "devices")
        ]
        assert not comparison.ok

    def test_improvement_never_flags(self):
        baseline = _sweep("devices=1,2")
        current = _sweep("devices=1,2")
        for point in current.points:
            better = point.probes["flat"]
            better.samples = [sample * 2 for sample in better.samples]
        assert compare_sweeps(current, baseline, threshold=0.1).ok

    def test_different_grids_refused(self):
        comparison = compare_sweeps(
            _sweep("devices=1,2"), _sweep("devices=1,2,4"), threshold=0.1
        )
        assert comparison.refused
        assert not comparison.ok
        assert not comparison.points
        assert "different grids" in comparison.notes[0]

    def test_render_reports_counts(self):
        sweep = _sweep("devices=1,2")
        text = compare_sweeps(sweep, sweep, threshold=0.1).render()
        assert "0 curve regression(s)" in text
        assert "slope" in text
