"""Edge-case tests for the report exporters (repro.obs.export):
empty reports, all-idle modules, and histogram-bucket round-trips."""

import csv
import json

from repro.hw.engine import Engine
from repro.obs.export import (
    chrome_trace,
    report_from_dict,
    report_to_csv_rows,
    report_to_dict,
    write_report_csv,
)
from repro.obs.profile import (
    MemoryProfile,
    ModuleProfile,
    ProfileReport,
    Profiler,
    QueueProfile,
)

from hw_harness import ListSink, ListSource


def _empty_report():
    return ProfileReport(
        name="empty", cycles=0, mode="event", wall_seconds=0.0,
        ticks_executed=0, ticks_possible=0, fast_forward_cycles=0,
        modules=[], queues=[],
        memory=MemoryProfile(requests=0, bytes_transferred=0, responses=0),
    )


def _all_idle_report(cycles=50):
    modules = [
        ModuleProfile(
            name=name, kind="M", busy=0, starved=0, stalled=0,
            idle=cycles, flits_out=0,
        )
        for name in ("a", "b")
    ]
    return ProfileReport(
        name="idle", cycles=cycles, mode="dense", wall_seconds=0.0,
        ticks_executed=0, ticks_possible=2 * cycles, fast_forward_cycles=0,
        modules=modules,
        queues=[QueueProfile("a->b", 8, 0, 0, 0)],
        memory=MemoryProfile(requests=0, bytes_transferred=0, responses=0),
    )


class TestEmptyReport:
    def test_to_dict(self):
        data = report_to_dict(_empty_report())
        assert data["modules"] == {}
        assert data["queues"] == {}
        assert data["cycles"] == 0
        assert data["skip_ratio"] == 0.0
        json.dumps(data)  # must be serializable

    def test_round_trip(self):
        rebuilt = report_from_dict(report_to_dict(_empty_report()))
        assert rebuilt.modules == []
        assert rebuilt.queues == []
        assert rebuilt.bottleneck() is None
        rebuilt.validate()

    def test_csv_rows(self):
        rows = report_to_csv_rows(_empty_report())
        assert ("run", "empty", "cycles", 0) in rows
        assert not [row for row in rows if row[0] == "module"]

    def test_chrome_trace(self):
        trace = chrome_trace(_empty_report())
        assert trace["otherData"]["cycles"] == 0
        # Only the process-name metadata event remains.
        assert all(event["ph"] == "M" for event in trace["traceEvents"])

    def test_render(self):
        assert "0 cycles" in _empty_report().render()


class TestAllIdleReport:
    def test_invariant_holds(self):
        report = _all_idle_report()
        report.validate()
        data = report_to_dict(report)
        for entry in data["modules"].values():
            assert entry["utilization"] == 0.0
            assert entry["idle"] == 50

    def test_round_trip_preserves_idle(self):
        rebuilt = report_from_dict(report_to_dict(_all_idle_report()))
        rebuilt.validate()
        assert all(m.idle == 50 and m.busy == 0 for m in rebuilt.modules)


class TestHistogramBuckets:
    def _profiled_report(self):
        from repro.hw.flit import Flit

        engine = Engine(default_queue_capacity=4)
        source = engine.add_module(
            ListSource("src", [Flit({"value": i}) for i in range(12)])
        )
        sink = engine.add_module(ListSink("sink"))
        engine.connect(source, sink)
        profiler = Profiler(timeline=False)
        profiler.attach(engine)
        engine.run(mode="dense")
        report = profiler.report()
        profiler.detach()
        return report

    def test_csv_carries_occupancy_buckets(self):
        report = self._profiled_report()
        queue = report.queues[0]
        assert queue.occupancy_counts, "profiler recorded no histogram"
        rows = report_to_csv_rows(report)
        bucket_rows = {
            row[2]: row[3]
            for row in rows
            if row[0] == "queue" and row[2].startswith("occupancy[")
        }
        for occupancy, count in enumerate(queue.occupancy_counts):
            assert bucket_rows[f"occupancy[{occupancy}]"] == count

    def test_csv_buckets_round_trip_through_file(self, tmp_path):
        report = self._profiled_report()
        path = tmp_path / "report.csv"
        write_report_csv(report, str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        queue = report.queues[0]
        recovered = [0] * len(queue.occupancy_counts)
        for row in rows:
            if row["section"] == "queue" and row["metric"].startswith(
                "occupancy["
            ):
                index = int(row["metric"][len("occupancy["):-1])
                recovered[index] = int(row["value"])
        assert recovered == list(queue.occupancy_counts)
        # The buckets integrate to the profiled window.
        assert sum(recovered) == report.cycles

    def test_json_round_trip_preserves_buckets(self):
        report = self._profiled_report()
        rebuilt = report_from_dict(report_to_dict(report))
        assert (
            rebuilt.queues[0].occupancy_counts
            == list(report.queues[0].occupancy_counts)
        )
        assert rebuilt.queues[0].mean_occupancy() == (
            report.queues[0].mean_occupancy()
        )

    def test_empty_buckets_emit_no_rows(self):
        report = _all_idle_report()
        rows = report_to_csv_rows(report)
        assert not [r for r in rows if r[2].startswith("occupancy[")]
