"""Tests for multi-pipeline (Figure 8) execution of the real accelerators."""

import pytest

from repro.accel.metadata import run_metadata_update
from repro.accel.scheduler import ParallelRunStats, run_metadata_parallel
from repro.tables.partition import PartitionId


@pytest.fixture(scope="module")
def parts(workload):
    return [(pid, part) for pid, part in workload.partitions if part.num_rows > 0]


def test_parallel_results_match_serial(workload, parts):
    results, _stats = run_metadata_parallel(parts, workload.reference, n_pipelines=4)
    for pid, part in parts:
        serial = run_metadata_update(part, workload.reference.lookup(pid))
        assert results[pid].nm == serial.nm, str(pid)
        assert results[pid].md == serial.md, str(pid)
        assert results[pid].uq == serial.uq, str(pid)


def test_parallelism_reduces_wall_cycles(workload, parts):
    if len(parts) < 2:
        pytest.skip("needs multiple partitions")
    _res1, serial = run_metadata_parallel(parts, workload.reference, n_pipelines=1)
    _resn, parallel = run_metadata_parallel(
        parts, workload.reference, n_pipelines=min(4, len(parts))
    )
    assert parallel.total_cycles < serial.total_cycles
    assert parallel.waves < serial.waves


def test_wave_count(workload, parts):
    n = len(parts)
    _res, stats = run_metadata_parallel(parts, workload.reference, n_pipelines=2)
    assert stats.waves == (n + 1) // 2
    assert len(stats.per_wave_cycles) == stats.waves
    assert stats.cycles_including_load > stats.total_cycles


def test_pipeline_count_validation(workload, parts):
    with pytest.raises(ValueError):
        run_metadata_parallel(parts, workload.reference, n_pipelines=0)


def test_empty_partitions_included_in_results(workload, parts):
    """Regression: the parallel path used to drop empty partitions from
    its results dict while the serial driver included them."""
    empty_pid = PartitionId(20, 4096)
    with_empty = parts + [(empty_pid, workload.table.take([]))]
    results, _stats = run_metadata_parallel(
        with_empty, workload.reference, n_pipelines=2
    )
    assert set(results) == {pid for pid, _part in with_empty}
    empty = results[empty_pid]
    assert empty.nm == [] and empty.md == [] and empty.uq == []
    assert empty.run is None


def test_workers_kwarg_matches_serial(workload, parts):
    serial_res, serial_stats = run_metadata_parallel(
        parts, workload.reference, n_pipelines=1, workers=1
    )
    pool_res, pool_stats = run_metadata_parallel(
        parts, workload.reference, n_pipelines=1, workers=2
    )
    assert serial_stats.per_wave_cycles == pool_stats.per_wave_cycles
    for pid in serial_res:
        assert pool_res[pid].nm == serial_res[pid].nm
        assert pool_res[pid].md == serial_res[pid].md


def _stats(**overrides):
    base = dict(waves=0, total_cycles=0, spm_load_cycles=0, per_wave_cycles=[])
    base.update(overrides)
    return ParallelRunStats(**base)


def test_skip_ratio_guards_division_by_zero():
    assert _stats().skip_ratio == 0.0
    assert _stats(ticks_executed=3, ticks_possible=4).skip_ratio == 0.25


def test_host_flits_per_second_guards_division_by_zero():
    assert _stats().host_flits_per_second == 0.0
    assert _stats(total_flits=10).host_flits_per_second == 0.0
    assert _stats(total_flits=10, wall_seconds=2.0).host_flits_per_second == 5.0


def test_host_parallelism_guards_division_by_zero():
    assert _stats().host_parallelism == 0.0
    assert _stats(wall_seconds=4.0, elapsed_seconds=2.0).host_parallelism == 2.0
