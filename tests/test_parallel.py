"""Tests for multi-pipeline (Figure 8) execution of the real accelerators."""

import pytest

from repro.accel.metadata import run_metadata_update
from repro.accel.parallel import run_metadata_parallel


@pytest.fixture(scope="module")
def parts(workload):
    return [(pid, part) for pid, part in workload.partitions if part.num_rows > 0]


def test_parallel_results_match_serial(workload, parts):
    results, _stats = run_metadata_parallel(parts, workload.reference, n_pipelines=4)
    for pid, part in parts:
        serial = run_metadata_update(part, workload.reference.lookup(pid))
        assert results[pid].nm == serial.nm, str(pid)
        assert results[pid].md == serial.md, str(pid)
        assert results[pid].uq == serial.uq, str(pid)


def test_parallelism_reduces_wall_cycles(workload, parts):
    if len(parts) < 2:
        pytest.skip("needs multiple partitions")
    _res1, serial = run_metadata_parallel(parts, workload.reference, n_pipelines=1)
    _resn, parallel = run_metadata_parallel(
        parts, workload.reference, n_pipelines=min(4, len(parts))
    )
    assert parallel.total_cycles < serial.total_cycles
    assert parallel.waves < serial.waves


def test_wave_count(workload, parts):
    n = len(parts)
    _res, stats = run_metadata_parallel(parts, workload.reference, n_pipelines=2)
    assert stats.waves == (n + 1) // 2
    assert len(stats.per_wave_cycles) == stats.waves
    assert stats.cycles_including_load > stats.total_cycles


def test_pipeline_count_validation(workload, parts):
    with pytest.raises(ValueError):
        run_metadata_parallel(parts, workload.reference, n_pipelines=0)
