"""Tests for the structured JSON-lines logger (repro.obs.log)."""

import io
import json
import logging

from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.obs.log import (
    HumanFormatter,
    configure_logging,
    get_logger,
    set_worker_id,
)


def _capture(json_lines=False, verbosity=0, quiet=False):
    stream = io.StringIO()
    configure_logging(
        json_lines=json_lines, verbosity=verbosity, quiet=quiet,
        stream=stream,
    )
    return stream


def _reset():
    # Leave the package logger unconfigured for other tests.
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        root.removeHandler(handler)
    root.setLevel(logging.NOTSET)
    root.propagate = True
    set_worker_id(None)


def teardown_function(_fn):
    _reset()


def test_get_logger_namespacing():
    assert get_logger("scheduler").name == "repro.scheduler"
    assert get_logger("repro.runtime").name == "repro.runtime"


def test_json_lines_shape():
    stream = _capture(json_lines=True)
    get_logger("test").info("hello %s", "world", extra={"cycles": 42})
    record = json.loads(stream.getvalue())
    assert record["msg"] == "hello world"
    assert record["level"] == "info"
    assert record["logger"] == "repro.test"
    assert record["cycles"] == 42
    assert "ts" in record
    assert "run_id" not in record  # no active run context


def test_json_records_carry_run_and_worker_ids(tmp_path):
    stream = _capture(json_lines=True)
    manifest = RunManifest(
        workload="t", config={}, seed=0, pipelines=1, workers=1,
        mode="event",
    )
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    set_worker_id("w99")
    try:
        with run_context(manifest, ledger):
            get_logger("test").info("inside")
    finally:
        set_worker_id(None)
    record = json.loads(stream.getvalue())
    assert record["run_id"] == manifest.run_id
    assert record["worker_id"] == "w99"


def test_human_format_shape():
    stream = _capture()
    get_logger("scheduler").info("4 waves")
    line = stream.getvalue().strip()
    assert line.endswith("scheduler: 4 waves")
    assert "repro." not in line  # prefix stripped for the terminal


def test_human_format_worker_prefix():
    formatter = HumanFormatter()
    record = logging.LogRecord(
        "repro.x", logging.INFO, "", 0, "msg", (), None
    )
    record.worker_id = "w7"
    assert "[w7] " in formatter.format(record)


def test_verbosity_levels():
    stream = _capture()  # default: INFO
    log = get_logger("test")
    log.debug("hidden")
    log.info("shown")
    assert "hidden" not in stream.getvalue()
    assert "shown" in stream.getvalue()

    stream = _capture(verbosity=1)
    get_logger("test").debug("now visible")
    assert "now visible" in stream.getvalue()

    stream = _capture(quiet=True)
    log = get_logger("test")
    log.info("suppressed")
    log.warning("still shown")
    assert "suppressed" not in stream.getvalue()
    assert "still shown" in stream.getvalue()


def test_configure_is_idempotent():
    _capture()
    stream = _capture()
    get_logger("test").info("once")
    # Reconfiguring replaced (not stacked) the handler: one line only.
    assert len(stream.getvalue().strip().splitlines()) == 1


def test_exception_rendering():
    stream = _capture(json_lines=True)
    try:
        raise RuntimeError("boom")
    except RuntimeError:
        get_logger("test").error("failed", exc_info=True)
    record = json.loads(stream.getvalue())
    assert "boom" in record["exc"]
