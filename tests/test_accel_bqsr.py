"""Integration tests: the Figure 12 BQSR covariate-table accelerator."""

import numpy as np

from repro.accel.bqsr import merge_partition_results, run_bqsr_partition
from repro.gatk.bqsr import build_covariate_tables


def accumulate_hw(workload):
    by_group = {}
    for pid, part in workload.group_partitions:
        if part.num_rows == 0:
            continue
        result = run_bqsr_partition(
            part, workload.reference.lookup(pid), workload.read_length
        )
        by_group.setdefault(pid.read_group, []).append(result)
    return merge_partition_results(by_group, workload.read_length)


def test_covariate_tables_bit_identical(workload):
    """All four count buffers must match the software baseline exactly,
    for every read group."""
    hw = accumulate_hw(workload)
    sw = build_covariate_tables(workload.reads, workload.genome, workload.read_length)
    assert set(hw) == set(sw)
    for read_group, expected in sw.items():
        got = hw[read_group]
        assert np.array_equal(got.total_cycle, expected.total_cycle)
        assert np.array_equal(got.error_cycle, expected.error_cycle)
        assert np.array_equal(got.total_context, expected.total_context)
        assert np.array_equal(got.error_context, expected.error_context)


def test_errors_never_exceed_totals(workload):
    pid, part = next(
        (p, t) for p, t in workload.group_partitions if t.num_rows > 0
    )
    result = run_bqsr_partition(
        part, workload.reference.lookup(pid), workload.read_length
    )
    assert np.all(result.error_cycle <= result.total_cycle)
    assert np.all(result.error_context <= result.total_context)


def test_drain_phase_streams_all_spms(workload):
    pid, part = next(
        (p, t) for p, t in workload.group_partitions if t.num_rows > 0
    )
    result = run_bqsr_partition(
        part, workload.reference.lookup(pid), workload.read_length, drain=True
    )
    _spm_words = (
        len(result.total_cycle) + len(result.total_context)
        + len(result.error_cycle) + len(result.error_context)
    )
    # Four drain readers run concurrently; the drain takes at least as
    # long as the largest SPM.
    assert result.drain_stats.cycles >= len(result.total_cycle)
    assert result.drain_stats.flits_by_module["drain0"] == len(result.total_cycle)


def test_rmw_hazards_occur_but_counts_stay_exact(workload):
    """Consecutive same-bin bases trip the interlock; correctness must be
    unaffected (the whole point of the hazard logic)."""
    total_stalls = 0
    for pid, part in workload.group_partitions:
        if part.num_rows == 0:
            continue
        result = run_bqsr_partition(
            part, workload.reference.lookup(pid), workload.read_length,
            drain=False,
        )
        total_stalls += result.hazard_stalls
    assert total_stalls > 0  # hazards genuinely exercised


def test_snp_sites_excluded_in_hw(workload):
    hw = accumulate_hw(workload)
    # Count M bases at non-SNP sites in software terms.
    expected_obs = 0
    for read in workload.reads:
        chromosome = workload.genome[read.chrom]
        for op, ref_pos, _ in read.cigar.walk(read.pos):
            if op == "M" and not chromosome.is_snp[ref_pos]:
                expected_obs += 1
    assert sum(t.observations() for t in hw.values()) == expected_obs
