"""Tests for the observability layer: registry, timelines, profiler,
report invariants, and exporters."""

import csv
import json

import pytest

from repro.accel.markdup import run_quality_sums
from repro.hw.engine import Engine
from repro.hw.flit import item_flits
from repro.hw.modules import Reducer
from repro.obs import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Profiler,
    TimelineRecorder,
    chrome_trace,
    profile_engine_run,
    registry_or_null,
    report_to_csv_rows,
    report_to_dict,
    write_chrome_trace,
    write_report_csv,
    write_report_json,
)

from hw_harness import ListSink, ListSource


def build_chain(n_values=20, capacity=None):
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(n_values)))))
    middle = engine.add_module(Reducer("mid", op="sum"))
    sink = engine.add_module(ListSink("sink"))
    engine.connect(source, middle, capacity=capacity)
    engine.connect(middle, sink, capacity=capacity)
    return engine, sink


# -- registry ------------------------------------------------------------------------


def test_counter_get_or_create_and_inc():
    registry = MetricsRegistry()
    a = registry.counter("flits", module="src")
    b = registry.counter("flits", module="src")
    assert a is b
    a.inc()
    a.inc(4)
    assert registry.value("flits", module="src") == 5
    assert registry.value("flits", module="other", default=-1) == -1


def test_labels_are_order_insensitive():
    registry = MetricsRegistry()
    a = registry.counter("m", x=1, y=2)
    b = registry.counter("m", y=2, x=1)
    assert a is b


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    gauge.set(3)
    gauge.set(7)
    assert registry.value("depth") == 7


def test_histogram_record_mean_quantile():
    registry = MetricsRegistry()
    hist = registry.histogram("occ", queue="q")
    hist.record(0, weight=3)
    hist.record(2)
    hist.record(4)
    assert hist.total == 5
    assert hist.mean() == pytest.approx((0 * 3 + 2 + 4) / 5)
    assert hist.quantile(0.5) == 0
    assert hist.quantile(1.0) == 4
    assert hist.counts == [3, 0, 1, 0, 1]


def test_name_reuse_with_other_kind_raises():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(TypeError):
        registry.gauge("thing")


def test_disabled_registry_is_nullobject():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("x")
    counter.inc(10)
    assert counter.value == 0
    assert len(registry) == 0
    assert registry_or_null(None) is NULL_REGISTRY
    enabled = MetricsRegistry()
    assert registry_or_null(enabled) is enabled


def test_as_dict_snapshot():
    registry = MetricsRegistry()
    registry.counter("flits", module="a").inc(2)
    registry.gauge("depth").set(5)
    registry.histogram("occ").record(1)
    snap = registry.as_dict()
    assert snap["flits{module=a}"] == 2
    assert snap["depth"] == 5
    assert snap["occ"] == [0, 1]


def test_values_by_name():
    registry = MetricsRegistry()
    registry.counter("flits", module="a").inc(1)
    registry.counter("flits", module="b").inc(2)
    values = registry.values("flits")
    assert len(values) == 2
    assert {inst.value for inst in values.values()} == {1, 2}


def test_instruments_iterable():
    registry = MetricsRegistry()
    registry.counter("a")
    registry.gauge("b")
    kinds = {type(inst) for inst in registry}
    assert kinds == {Counter, Gauge}
    registry.histogram("c")
    assert Histogram in {type(inst) for inst in registry}


# -- timeline recorder ---------------------------------------------------------------


def test_recorder_coalesces_spans_and_counts_states():
    engine, sink = build_chain(10)
    recorder = TimelineRecorder(engine)
    while not engine.is_quiescent() or engine.cycle == 0:
        engine.step()
        recorder.sample()
    assert sink.collected
    src = recorder.timelines["src"]
    totals = src.state_cycles()
    assert totals["busy"] > 0
    assert src.cycles_recorded() == recorder.cycles_recorded
    # spans are coalesced: far fewer spans than cycles
    assert len(src.spans) < recorder.cycles_recorded


def test_recorder_ignores_duplicate_cycle():
    engine, _sink = build_chain(5)
    recorder = TimelineRecorder(engine)
    engine.step()
    assert recorder.sample() is True
    assert recorder.sample() is False  # same cycle again
    assert recorder.cycles_recorded == 1


def test_recorder_attached_mid_run_starts_at_next_boundary():
    engine, _sink = build_chain(10)
    for _ in range(4):
        engine.step()
    recorder = TimelineRecorder(engine)
    assert recorder.attach_cycle == 4
    assert recorder.sample() is False  # cycle 3 pre-dates the attach
    engine.step()
    assert recorder.sample() is True
    assert recorder.cycles_recorded == 1
    for timeline in recorder.timelines.values():
        for span in timeline.spans:
            assert span.start >= 4


def test_recorder_pads_gaps_as_idle():
    engine, _sink = build_chain(5)
    recorder = TimelineRecorder(engine)
    engine.step()
    recorder.sample()
    # pretend the engine fast-forwarded to cycle 10
    assert recorder.sample(10) is True
    assert recorder.cycles_recorded == 11
    src = recorder.timelines["src"]
    assert src.cycles_recorded() == 11
    idle_total = src.state_cycles()["idle"]
    assert idle_total >= 9  # cycles 1..9 padded idle


def test_state_fractions_sum_to_one():
    engine, _sink = build_chain(12)
    recorder = TimelineRecorder(engine)
    while not engine.is_quiescent() or engine.cycle == 0:
        engine.step()
        recorder.sample()
    for fractions in recorder.state_fractions().values():
        assert sum(fractions.values()) == pytest.approx(1.0)
    assert recorder.busiest_module() in ("src", "mid", "sink")


# -- profiler ------------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["event", "dense"])
def test_profile_states_sum_to_cycles(mode):
    engine, sink = build_chain(30)
    stats, report = profile_engine_run(engine, mode=mode, name="chain")
    assert sink.collected
    assert report.cycles == stats.cycles
    report.validate()  # busy+starved+stalled+idle == cycles, per module
    for profile in report.modules:
        assert profile.total == report.cycles


def test_profile_modes_agree_on_cycles_and_flits():
    reports = {}
    for mode in ("event", "dense"):
        engine, _sink = build_chain(25)
        _stats, report = profile_engine_run(engine, mode=mode)
        reports[mode] = report
    event, dense = reports["event"], reports["dense"]
    assert event.cycles == dense.cycles
    for profile in event.modules:
        assert profile.flits_out == dense.module(profile.name).flits_out
        assert profile.busy == dense.module(profile.name).busy
    # timelines cover the whole run in both modes
    for report in reports.values():
        for spans in report.timelines.values():
            assert sum(s.cycles for s in spans) == report.cycles


def test_profile_queue_occupancy_covers_run():
    engine, _sink = build_chain(20)
    _stats, report = profile_engine_run(engine, name="q")
    for queue in report.queues:
        assert sum(queue.occupancy_counts) == report.cycles
        assert queue.total_pushed > 0
    assert report.bottleneck() == "src"


def test_profile_backpressure_counts_stalls():
    engine = Engine()
    source = engine.add_module(ListSource("src", item_flits(list(range(40)))))

    class SlowSink(ListSink):
        def tick(self, cycle):
            if cycle % 3 == 0:
                super().tick(cycle)

    sink = engine.add_module(SlowSink("sink"))
    engine.connect(source, sink, capacity=2)
    _stats, report = profile_engine_run(engine, mode="dense")
    report.validate()
    assert report.module("src").stalled > 0
    queue = report.queues[0]
    assert queue.full_stalls > 0
    assert queue.max_occupancy == 2


def test_profiler_attach_is_exclusive_and_detachable():
    engine, _sink = build_chain(5)
    profiler = Profiler()
    profiler.attach(engine)
    with pytest.raises(RuntimeError):
        profiler.attach(engine)
    profiler.detach()
    assert engine.probe is None
    other = Profiler()
    other.attach(engine)
    assert engine.probe is other


def test_profiler_memory_channels():
    profiler = Profiler(name="md")
    result = run_quality_sums([[3, 4], [5, 6]], profiler=profiler)
    report = profiler.report()
    report.validate()
    assert report.cycles == result.stats.cycles
    assert report.memory.requests > 0
    assert sum(c.grants for c in report.memory.channels) == report.memory.requests
    assert len(report.memory.channels) == 4


def test_report_render_mentions_modules():
    engine, _sink = build_chain(10)
    _stats, report = profile_engine_run(engine, name="demo")
    text = report.render()
    assert "demo" in text
    assert "src" in text and "mid" in text and "sink" in text


# -- exporters -----------------------------------------------------------------------


def _small_report():
    engine, _sink = build_chain(15)
    _stats, report = profile_engine_run(engine, name="exp")
    return report


def test_chrome_trace_shape():
    report = _small_report()
    trace = chrome_trace(report)
    events = trace["traceEvents"]
    json.dumps(trace)  # serializable
    names = {e["args"]["name"] for e in events if e["name"] == "thread_name"}
    assert names == {"src", "mid", "sink"}
    spans = [e for e in events if e["ph"] == "X"]
    assert spans
    for event in spans:
        assert event["name"] in ("busy", "stalled", "starved")
        assert event["dur"] >= 1
        assert 0 <= event["ts"] <= report.cycles
    counters = [e for e in events if e["ph"] == "C"]
    assert counters  # queue occupancy tracks present


def test_chrome_trace_file_roundtrip(tmp_path):
    report = _small_report()
    path = tmp_path / "trace.json"
    write_chrome_trace(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["traceEvents"]
    assert loaded["otherData"]["cycles"] == report.cycles


def test_report_json_roundtrip(tmp_path):
    report = _small_report()
    path = tmp_path / "report.json"
    write_report_json(report, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["cycles"] == report.cycles
    for name, entry in loaded["modules"].items():
        states = entry["busy"] + entry["starved"] + entry["stalled"] + entry["idle"]
        assert states == loaded["cycles"], name


def test_report_dict_matches_report():
    report = _small_report()
    data = report_to_dict(report)
    assert data["modules"]["src"]["flits_out"] == report.module("src").flits_out
    assert set(data["queues"]) == {q.name for q in report.queues}


def test_report_csv(tmp_path):
    report = _small_report()
    rows = report_to_csv_rows(report)
    sections = {row[0] for row in rows}
    assert {"run", "module", "queue", "memory"} <= sections
    path = tmp_path / "report.csv"
    write_report_csv(report, str(path))
    with open(path) as handle:
        parsed = list(csv.reader(handle))
    assert parsed[0] == ["section", "name", "metric", "value"]
    assert len(parsed) == len(rows) + 1


def test_nearest_rank_percentile_edge_cases():
    from repro.obs.registry import nearest_rank, nearest_rank_percentile

    # empty input has no percentile
    assert nearest_rank_percentile([], 50) is None
    # a single sample answers every percentile
    assert nearest_rank_percentile([7], 1) == 7
    assert nearest_rank_percentile([7], 99) == 7
    # ties: the nearest-rank element is one of the tied values
    assert nearest_rank_percentile([5, 5, 5, 9], 50) == 5
    assert nearest_rank_percentile([5, 5, 5, 9], 99) == 9
    # unsorted input is sorted before ranking
    assert nearest_rank_percentile([9, 1, 5], 50) == 5
    # the rank itself: ceil(q/100 * n), floored at 1
    assert nearest_rank(4, 50) == 2
    assert nearest_rank(4, 1) == 1
    assert nearest_rank(4, 100) == 4
    with pytest.raises(ValueError):
        nearest_rank(4, 0)
    with pytest.raises(ValueError):
        nearest_rank(0, 50)


def test_serve_report_percentile_delegates_to_shared_helper():
    from repro.obs.registry import nearest_rank_percentile
    from repro.serve.report import percentile

    values = [3, 1, 4, 1, 5, 9, 2, 6]
    for q in (1, 25, 50, 75, 99):
        assert percentile(values, q) == nearest_rank_percentile(values, q)
    assert percentile([], 50) is None


def test_histogram_quantile_uses_nearest_rank():
    hist = Histogram("h", {})
    for value in (1, 2, 3, 4):
        hist.record(value)
    # ranks 1..4 map straight onto the recorded values
    assert hist.quantile(0.25) == 1
    assert hist.quantile(0.5) == 2
    assert hist.quantile(0.75) == 3
    assert hist.quantile(1.0) == 4
