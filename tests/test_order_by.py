"""Tests for ORDER BY support in the SQL layer."""

import pytest

from repro.sql import Executor
from repro.sql.parser import parse_query
from repro.sql.plan import LimitNode, SortNode, build_plan
from repro.tables.schema import Schema
from repro.tables.table import Table


@pytest.fixture
def executor():
    ex = Executor()
    ex.register_table("T", Table.from_columns(
        Schema.of(K="uint32", V="int64", G="uint8"),
        K=[3, 1, 2, 4], V=[30, 10, 20, 10], G=[1, 0, 1, 0],
    ))
    return ex


def test_parse_order_by():
    query = parse_query("SELECT * FROM T ORDER BY K")
    assert len(query.order_by) == 1
    assert not query.order_by[0].descending


def test_parse_order_by_desc_and_multi():
    query = parse_query("SELECT * FROM T ORDER BY G DESC, K ASC")
    assert query.order_by[0].descending
    assert not query.order_by[1].descending


def test_plan_sort_under_limit():
    plan = build_plan(parse_query("SELECT * FROM T ORDER BY K LIMIT 2"))
    assert isinstance(plan, LimitNode)
    assert isinstance(plan.child, SortNode)


def test_ascending(executor):
    out = executor.query("SELECT * FROM T ORDER BY K")
    assert out.column("K").tolist() == [1, 2, 3, 4]


def test_descending(executor):
    out = executor.query("SELECT * FROM T ORDER BY V DESC")
    assert out.column("V").tolist() == [30, 20, 10, 10]


def test_multi_key_sort(executor):
    out = executor.query("SELECT * FROM T ORDER BY G, V DESC")
    rows = [(r["G"], r["V"]) for r in out.rows()]
    assert rows == [(0, 10), (0, 10), (1, 30), (1, 20)]


def test_multi_key_stability(executor):
    # Equal (G, V) keep their input relative order: K=1 before K=4.
    out = executor.query("SELECT * FROM T ORDER BY G, V")
    ks = [r["K"] for r in out.rows() if r["G"] == 0]
    assert ks == [1, 4]


def test_order_by_with_limit(executor):
    # ORDER BY keys must appear in the select list (documented limitation).
    out = executor.query("SELECT K, V FROM T ORDER BY V DESC LIMIT 2")
    assert out.column("K").tolist() == [3, 2]


def test_order_by_key_must_be_selected(executor):
    from repro.sql import SqlError

    with pytest.raises(SqlError):
        executor.query("SELECT K FROM T ORDER BY V")


def test_order_by_after_group_by(executor):
    out = executor.query(
        "SELECT G, SUM(V) AS total FROM T GROUP BY G ORDER BY total DESC"
    )
    assert out.column("total").tolist() == [50, 20]
