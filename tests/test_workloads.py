"""Tests for the evaluation workload builder."""

from repro.eval.workloads import (
    make_single_chromosome_workload,
    make_workload,
    per_chromosome_counts,
)


def test_default_workload_structure(workload):
    assert workload.n_reads >= 80
    assert workload.partitions.total_rows() == workload.n_reads
    assert workload.group_partitions.total_rows() == workload.n_reads


def test_all_partitions_have_reference(workload):
    for pid, _part in workload.partitions:
        assert pid in workload.reference
    for pid, _part in workload.group_partitions:
        assert pid in workload.reference


def test_overlap_covers_read_span(workload):
    for pid, part in workload.partitions:
        row = workload.reference.lookup(pid)
        limit = int(row["REFPOS"]) + len(row["SEQ"])
        for endpos in part.column("ENDPOS").tolist():
            assert endpos < limit


def test_single_chromosome_workload():
    wl = make_single_chromosome_workload(chrom=21, n_reads=30)
    assert all(read.chrom == 21 for read in wl.reads)


def test_per_chromosome_counts(workload):
    counts = per_chromosome_counts(workload)
    assert sum(counts.values()) == workload.n_reads
    assert set(counts) <= {20, 21}
    for chrom, count in counts.items():
        assert workload.reads_on_chromosome(chrom) == count


def test_workload_determinism():
    a = make_workload(n_reads=30, read_length=40, chromosomes=(21,), seed=9)
    b = make_workload(n_reads=30, read_length=40, chromosomes=(21,), seed=9)
    assert [r.pos for r in a.reads] == [r.pos for r in b.reads]
