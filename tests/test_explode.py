"""Unit tests for the ReadExplode/PosExplode reference semantics."""

import numpy as np

from repro.genomics.cigar import Cigar, encode_elements
from repro.genomics.sequences import encode_sequence
from repro.sql.explode import DEL_CODE, INS_POS, read_explode


def explode(pos, cigar_text, seq_text, qual=None):
    cigar = Cigar.parse(cigar_text)
    return read_explode(
        pos, encode_elements(cigar), encode_sequence(seq_text), qual
    )


def test_paper_figure3_example():
    """Figure 3: POS=104, CIGAR=2S3M1I1M1D2M, SEQ=AGGTAAACA."""
    qual = [ord(c) - 33 for c in "##9>>AAB?"]
    out = explode(104, "2S3M1I1M1D2M", "AGGTAAACA", qual)
    assert out.num_rows == 8
    positions = out.column("POS").tolist()
    assert positions == [104, 105, 106, INS_POS, 107, 108, 109, 110]
    bases = out.column("SEQ").tolist()
    # clipped AG dropped; emitted: G T A | A(ins) | A | Del | C A
    assert bases[:3] == encode_sequence("GTA").tolist()
    assert bases[3] == encode_sequence("A")[0]
    assert bases[5] == DEL_CODE
    quals = out.column("QUAL").tolist()
    assert quals[5] == DEL_CODE
    # First emitted base's quality is the third character ('9').
    assert quals[0] == ord("9") - 33


def test_soft_clips_dropped():
    out = explode(10, "2S3M2S", "AAGGGTT")
    assert out.num_rows == 3
    assert out.column("POS").tolist() == [10, 11, 12]


def test_all_match():
    out = explode(0, "4M", "ACGT")
    assert out.column("POS").tolist() == [0, 1, 2, 3]
    assert out.column("SEQ").tolist() == encode_sequence("ACGT").tolist()


def test_insertion_sentinel_never_joins():
    out = explode(0, "1M2I1M", "ACGT")
    positions = out.column("POS").tolist()
    assert positions == [0, INS_POS, INS_POS, 1]
    # The sentinel is the uint32 maximum, unreachable by genome positions.
    assert INS_POS == np.iinfo(np.uint32).max


def test_deletion_emits_ref_position():
    out = explode(5, "1M2D1M", "AC")
    assert out.column("POS").tolist() == [5, 6, 7, 8]
    assert out.column("SEQ").tolist()[1] == DEL_CODE
    assert out.column("SEQ").tolist()[2] == DEL_CODE


def test_without_qual_column():
    out = explode(0, "3M", "ACG")
    assert "QUAL" not in out.schema


def test_row_count_invariant():
    """Output rows == M + I + D bases."""
    cigar = Cigar.parse("2S5M1I3M2D4M1S")
    out = explode(0, str(cigar), "A" * cigar.read_length())
    expected = sum(e.length for e in cigar if e.op in "MID")
    assert out.num_rows == expected
