"""Tests for the end-to-end preprocessing pipeline driver."""

from repro.gatk.pipeline import run_preprocessing


def test_full_preprocessing(small_reads, small_genome):
    result = run_preprocessing(small_reads, small_genome, read_length=50)
    assert len(result.reads) == len(small_reads)
    assert len(result.metadata) == len(small_reads)
    # Reads come out coordinate-sorted.
    keys = [(r.chrom, r.pos) for r in result.reads]
    assert keys == sorted(keys)
    # Tags attached.
    assert all("MD" in r.tags for r in result.reads)


def test_duplicates_excluded_from_bqsr(small_reads, small_genome):
    result = run_preprocessing(small_reads, small_genome, read_length=50)
    non_duplicates = [r for r in result.reads if not r.is_duplicate]
    observations = sum(
        t.observations() for t in result.covariate_tables.values()
    )
    # Only non-duplicate M bases at non-SNP sites are observed.
    upper_bound = sum(
        sum(e.length for e in r.cigar if e.op == "M") for r in non_duplicates
    )
    assert 0 < observations <= upper_bound


def test_recalibration_happened(small_reads, small_genome):
    result = run_preprocessing(small_reads, small_genome, read_length=50)
    assert result.recalibrated_bases >= 0
    assert result.markdup.num_duplicates > 0  # the simulator injects dups
