"""Unit tests for the READS/REF tables (Table I)."""

import numpy as np
import pytest

from repro.tables.genomic_tables import (
    READS_SCHEMA,
    REF_SCHEMA,
    count_bases,
    max_array_length,
    reads_table_sorted,
    reads_to_table,
    reference_to_table,
    table_bytes,
    table_to_reads,
    validate_reads_table,
)


def test_reads_schema_matches_table1():
    # Table I column types.
    assert READS_SCHEMA["CHR"].kind == "uint8"
    assert READS_SCHEMA["POS"].kind == "uint32"
    assert READS_SCHEMA["ENDPOS"].kind == "uint32"
    assert READS_SCHEMA["CIGAR"].kind == "uint16[]"
    assert READS_SCHEMA["SEQ"].kind == "uint8[]"
    assert READS_SCHEMA["QUAL"].kind == "uint8[]"


def test_ref_schema_matches_table1():
    assert REF_SCHEMA["CHR"].kind == "uint8"
    assert REF_SCHEMA["REFPOS"].kind == "uint32"
    assert REF_SCHEMA["SEQ"].kind == "uint8[]"
    assert REF_SCHEMA["IS_SNP"].kind == "bool[]"


def test_reads_roundtrip(small_reads):
    table = reads_to_table(small_reads)
    assert table.num_rows == len(small_reads)
    back = table_to_reads(table)
    for original, roundtrip in zip(small_reads, back):
        assert roundtrip.chrom == original.chrom
        assert roundtrip.pos == original.pos
        assert roundtrip.cigar == original.cigar
        assert np.array_equal(roundtrip.seq, original.seq)
        assert np.array_equal(roundtrip.qual, original.qual)
        assert roundtrip.flags == original.flags
        assert roundtrip.read_group == original.read_group


def test_endpos_column(small_reads):
    table = reads_to_table(small_reads)
    for read, endpos in zip(small_reads, table.column("ENDPOS")):
        assert int(endpos) == read.end_pos


def test_validate_accepts_good_table(small_reads):
    validate_reads_table(reads_to_table(small_reads))


def test_validate_rejects_bad_endpos(small_reads):
    table = reads_to_table(small_reads)
    table.column("ENDPOS")[0] += 1
    with pytest.raises(ValueError):
        validate_reads_table(table)


def test_reference_to_table_partitions(small_genome):
    table = reference_to_table(small_genome, psize=1000, overlap=100)
    assert table.num_rows == 5  # 5000 bp / 1000
    first = table.row(0)
    assert first["REFPOS"] == 0
    assert len(first["SEQ"]) == 1100  # psize + overlap
    last = table.row(4)
    assert last["REFPOS"] == 4000
    assert len(last["SEQ"]) == 1000  # clipped at the chromosome end


def test_reference_rows_cover_genome(small_genome):
    table = reference_to_table(small_genome, psize=1000, overlap=100)
    covered = 0
    for row in table.rows():
        covered += min(1000, len(row["SEQ"]))
    assert covered == small_genome.total_length()


def test_reference_overlap_content(small_genome):
    table = reference_to_table(small_genome, psize=1000, overlap=50)
    first = table.row(0)
    second = table.row(1)
    # The overlap tail of row 0 equals the head of row 1.
    assert np.array_equal(first["SEQ"][1000:1050], second["SEQ"][:50])


def test_reference_validation():
    with pytest.raises(ValueError):
        reference_to_table(None, psize=0, overlap=1)


def test_table_bytes(small_reads):
    table = reads_to_table(small_reads)
    qual_bytes = table_bytes(table, ["QUAL"])
    assert qual_bytes == sum(len(r.qual) for r in small_reads)
    pos_bytes = table_bytes(table, ["POS"])
    assert pos_bytes == 4 * len(small_reads)
    assert table_bytes(table) > qual_bytes + pos_bytes


def test_max_array_length(small_reads):
    table = reads_to_table(small_reads)
    assert max_array_length(table, "SEQ") == 50
    with pytest.raises(ValueError):
        max_array_length(table, "POS")


def test_count_bases(small_reads):
    table = reads_to_table(small_reads)
    assert count_bases(table) == sum(len(r.seq) for r in small_reads)


def test_reads_table_sorted(small_reads):
    table = reads_to_table(list(reversed(small_reads)))
    out = reads_table_sorted(table)
    keys = list(zip(out.column("CHR").tolist(), out.column("POS").tolist()))
    assert keys == sorted(keys)
