"""Differential resilience suite: a run under a seeded fault plan must be
bit-identical to the fault-free run.

Each accelerator stage (metadata, markdup, bqsr) runs clean and faulted
— the plan injects a worker crash (a real process death), a wave
timeout (a real hang the watchdog reaps), and a transfer error — and
the per-partition outputs plus the deterministic half of
``ParallelRunStats`` must agree exactly, at ``workers=1`` and under
pool fan-out.  Host-side metrics (watchdog timeouts, pool restarts) are
allowed to differ; the fault/retry counters are not.

Also here: the scheduler failure paths ISSUE 5 calls out as untested —
empty-input scheduling, worker exception propagation, and
``SpmImageCache.merge`` conflict semantics.
"""

import numpy as np
import pytest

from repro.accel.scheduler import (
    BqsrWaveDriver,
    CachedImage,
    MarkdupWaveDriver,
    MetadataWaveDriver,
    SpmImageCache,
    WaveDriver,
    run_partitioned,
)
from repro.eval.workloads import make_workload
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    RetryBudgetExceeded,
    RetryPolicy,
)
from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.obs.registry import MetricsRegistry

#: One of each fault kind the scheduler site can suffer, pinned to
#: distinct waves so all three fire regardless of the stage's packing.
PLAN = FaultPlan(seed=11, specs=(
    FaultSpec("worker_crash", site="scheduler.wave", at=(0,)),
    FaultSpec("wave_timeout", site="scheduler.wave", at=(1,)),
    FaultSpec("transfer_error", site="scheduler.wave", at=(2,)),
))

#: Tiny backoffs keep the suite fast; the watchdog deadline is long
#: enough that a non-hung wave never trips it on a loaded CI host.
POLICY = RetryPolicy(max_retries=2, backoff_base=0.002, jitter=0.25, seed=11)
WAVE_TIMEOUT = 2.0


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        n_reads=120,
        read_length=60,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=1000,
        seed=105,
    )


def _drivers(workload):
    return {
        "metadata": (MetadataWaveDriver(reference=workload.reference), 1),
        "markdup": (MarkdupWaveDriver(), 1),
        "bqsr": (
            BqsrWaveDriver(reference=workload.reference, read_length=60), 1
        ),
    }


def _assert_results_equal(stage, a, b):
    assert set(a) == set(b)
    for pid in a:
        if stage == "metadata":
            assert a[pid].nm == b[pid].nm, str(pid)
            assert a[pid].md == b[pid].md, str(pid)
            assert a[pid].uq == b[pid].uq, str(pid)
        elif stage == "markdup":
            assert a[pid].quality_sums == b[pid].quality_sums, str(pid)
        else:
            for field in ("total_cycle", "total_context",
                          "error_cycle", "error_context"):
                np.testing.assert_array_equal(
                    getattr(a[pid], field), getattr(b[pid], field), str(pid)
                )


def _assert_deterministic_stats_equal(a, b):
    """The simulated half of the stats must not depend on host timing
    or on whether faults were injected."""
    assert a.waves == b.waves
    assert a.per_wave_cycles == b.per_wave_cycles
    assert a.total_cycles == b.total_cycles
    assert a.spm_load_cycles == b.spm_load_cycles
    assert a.total_flits == b.total_flits


@pytest.mark.parametrize("stage", ["metadata", "markdup", "bqsr"])
def test_faulted_run_is_bit_identical(stage, workload):
    driver, pipelines = _drivers(workload)[stage]
    clean_res, clean_stats = run_partitioned(
        driver, workload.partitions, pipelines, workers=1
    )
    assert clean_stats.waves >= 3, "plan needs three waves to land on"

    faulted = {}
    for workers in (1, 4):
        injector = FaultInjector(PLAN)
        res, stats = run_partitioned(
            driver, workload.partitions, pipelines, workers=workers,
            fault_injector=injector, retry_policy=POLICY,
            wave_timeout=WAVE_TIMEOUT,
        )
        _assert_results_equal(stage, clean_res, res)
        _assert_deterministic_stats_equal(clean_stats, stats)
        assert stats.faults_injected == 3
        assert stats.faults_by_kind == {
            "worker_crash": 1, "wave_timeout": 1, "transfer_error": 1
        }
        assert stats.retries == 3
        assert [
            (f.kind, f.slot) for f in injector.injected
        ] == [("worker_crash", 0), ("wave_timeout", 1), ("transfer_error", 2)]
        faulted[workers] = stats
    # the fault/retry counters are parent-side decisions: identical
    # across workers settings (host-side watchdog/pool counters aren't)
    assert faulted[1].faults_by_kind == faulted[4].faults_by_kind
    assert faulted[1].retries == faulted[4].retries
    # same backoffs, summed in wave-completion order => approx only
    assert faulted[1].backoff_seconds == pytest.approx(
        faulted[4].backoff_seconds
    )
    # pool fan-out really exercised the heavy machinery
    assert faulted[4].pool_restarts >= 1


def test_same_seed_same_plan_reproduces_injection_sites():
    plan = FaultPlan.from_spec("worker_crash:2~3,transfer_error:2~5", seed=77)
    replay = FaultPlan.from_spec("worker_crash:2~3,transfer_error:2~5", seed=77)
    for spec, spec2 in zip(plan.specs, replay.specs):
        assert plan.targets(spec) == replay.targets(spec2)
    other = FaultPlan.from_spec("worker_crash:2~3,transfer_error:2~5", seed=78)
    assert any(
        plan.targets(a) != other.targets(b)
        for a, b in zip(plan.specs, other.specs)
    )


def test_fault_events_reach_the_ledger(workload, tmp_path):
    driver, pipelines = _drivers(workload)["metadata"]
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    manifest = RunManifest(workload="resilience-test", workers=4)
    with run_context(manifest, ledger):
        run_partitioned(
            driver, workload.partitions, pipelines, workers=4,
            fault_injector=FaultInjector(PLAN), retry_policy=POLICY,
            wave_timeout=WAVE_TIMEOUT,
        )
    injected = ledger.events("fault.injected", run_id=manifest.run_id)
    assert {(e["kind"], e["slot"]) for e in injected} == {
        ("worker_crash", 0), ("wave_timeout", 1), ("transfer_error", 2)
    }
    assert all(e["site"] == "scheduler.wave" for e in injected)
    retries = ledger.events("fault.retry", run_id=manifest.run_id)
    assert len(retries) == 3
    assert all(e["backoff_seconds"] >= 0 for e in retries)
    # the prefix query sees every resilience event at once
    assert len(ledger.events("fault.")) >= len(injected) + len(retries)
    # and the run summary carries the counters
    (summary,) = ledger.events("scheduler.run", run_id=manifest.run_id)
    assert summary["faults_injected"] == 3
    assert summary["retries"] == 3


def test_stats_publish_fault_counters_to_shared_registry(workload):
    driver, pipelines = _drivers(workload)["markdup"]
    registry = MetricsRegistry()
    _, stats = run_partitioned(
        driver, workload.partitions, pipelines, workers=1,
        registry=registry,
        fault_injector=FaultInjector(PLAN), retry_policy=POLICY,
    )
    assert stats.faults_injected == 3
    assert registry.total("scheduler.faults") == 3
    for kind in ("worker_crash", "wave_timeout", "transfer_error"):
        assert registry.value(
            "scheduler.faults", stage="markdup", kind=kind
        ) == 1
    assert registry.value("scheduler.retries", stage="markdup") == 3


def test_degradation_ladder_ends_in_serial_fallback(workload):
    """A wave that crashes the pool past the restart budget must still
    finish — serially, in-process — with identical results."""
    driver, pipelines = _drivers(workload)["metadata"]
    clean_res, _ = run_partitioned(
        driver, workload.partitions, pipelines, workers=1
    )
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("worker_crash", site="scheduler.wave", at=(0,), attempts=2),
    ))
    res, stats = run_partitioned(
        driver, workload.partitions, pipelines, workers=4,
        fault_injector=FaultInjector(plan),
        retry_policy=RetryPolicy(max_retries=1, backoff_base=0.001, seed=1),
    )
    _assert_results_equal("metadata", clean_res, res)
    assert stats.pool_restarts >= 2
    assert stats.serial_fallback_waves >= 1


def test_retry_budget_exhaustion_raises(workload):
    driver, pipelines = _drivers(workload)["metadata"]
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("worker_crash", site="scheduler.wave", at=(0,), attempts=99),
    ))
    for workers in (1, 4):
        with pytest.raises(RetryBudgetExceeded):
            run_partitioned(
                driver, workload.partitions, pipelines, workers=workers,
                fault_injector=FaultInjector(plan),
                retry_policy=RetryPolicy(
                    max_retries=1, backoff_base=0.001, seed=1
                ),
            )


def test_watchdog_reaps_a_real_hang(workload):
    """An injected hang sleeps past the deadline in a worker; the parent
    abandons the future and the retry lands on a clean attempt."""
    driver, pipelines = _drivers(workload)["metadata"]
    clean_res, _ = run_partitioned(
        driver, workload.partitions, pipelines, workers=1
    )
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("wave_timeout", site="scheduler.wave", at=(0,)),
    ))
    res, stats = run_partitioned(
        driver, workload.partitions, pipelines, workers=4,
        fault_injector=FaultInjector(plan), retry_policy=POLICY,
        wave_timeout=0.4,
    )
    _assert_results_equal("metadata", clean_res, res)
    assert stats.faults_by_kind == {"wave_timeout": 1}
    # On a loaded host a clean retry attempt can blow the short deadline
    # too, so the host-side counters are lower-bounded, not exact.
    assert stats.retries >= 1
    assert stats.watchdog_timeouts >= 1


def test_wave_timeout_without_watchdog_is_an_ordinary_failure(workload):
    """No ``wave_timeout=`` armed: the injected timeout surfaces as an
    immediate worker failure and retries like any other fault."""
    driver, pipelines = _drivers(workload)["metadata"]
    clean_res, _ = run_partitioned(
        driver, workload.partitions, pipelines, workers=1
    )
    plan = FaultPlan(seed=1, specs=(
        FaultSpec("wave_timeout", site="scheduler.wave", at=(0,)),
    ))
    res, stats = run_partitioned(
        driver, workload.partitions, pipelines, workers=4,
        fault_injector=FaultInjector(plan), retry_policy=POLICY,
    )
    _assert_results_equal("metadata", clean_res, res)
    assert stats.watchdog_timeouts == 0
    assert stats.retries == 1


def test_wave_timeout_validation():
    driver = MarkdupWaveDriver()
    with pytest.raises(ValueError):
        run_partitioned(driver, [], 1, wave_timeout=0.0)


# -- untested scheduler failure paths (ISSUE 5 satellites) ---------------------------


class _ExplodingDriver(WaveDriver):
    """A driver whose simulation is a deterministic bug, not a fault."""

    stage = "exploding"
    uses_reference = False

    def empty_result(self, pid):
        return None

    def run_wave(self, wave, spm_cache):
        raise ValueError("deterministic driver bug")


def test_all_empty_partitions_never_build_a_pool(workload):
    """Every partition empty => zero waves, empty-shaped results, and no
    worker pool (nothing to simulate)."""
    driver, pipelines = _drivers(workload)["metadata"]
    empties = [
        (pid, part.take([])) for pid, part in list(workload.partitions)[:3]
    ]
    results, stats = run_partitioned(driver, empties, pipelines, workers=4)
    assert stats.waves == 0
    assert stats.workers == 1
    assert set(results) == {pid for pid, _ in empties}
    for result in results.values():
        assert result.nm == [] and result.md == [] and result.uq == []


def test_no_partitions_at_all(workload):
    driver, pipelines = _drivers(workload)["metadata"]
    results, stats = run_partitioned(driver, [], pipelines, workers=4)
    assert results == {} and stats.waves == 0


@pytest.mark.parametrize("workers", [1, 3])
def test_worker_exception_propagates(workload, workers):
    """Non-injected driver exceptions are bugs: they must propagate out
    of ``run_partitioned`` unchanged, not be retried as faults."""
    partitions = list(workload.partitions)[:3]
    with pytest.raises(ValueError, match="deterministic driver bug"):
        run_partitioned(_ExplodingDriver(), partitions, 1, workers=workers)


def test_spm_cache_merge_keeps_existing_entries():
    cache = SpmImageCache()
    keep = CachedImage(words=[1, 2], stats=None)
    cache.merge({("k",): keep})
    cache.merge({("k",): CachedImage(words=[9, 9], stats=None),
                 ("other",): CachedImage(words=[3], stats=None)})
    assert cache.images()[("k",)] is keep
    assert len(cache) == 2
