"""Unit tests for the SAM-style serialization."""

import io

import numpy as np

from repro.genomics.cigar import Cigar
from repro.genomics.read import AlignedRead
from repro.genomics.sam import format_read, parse_read, read_sam, write_sam


def make_read(**overrides):
    defaults = dict(
        name="readA",
        chrom=1,
        pos=99,
        cigar=Cigar.parse("3M1I2M"),
        seq=np.array([0, 1, 2, 3, 0, 1], dtype=np.uint8),
        qual=np.array([30, 31, 32, 33, 34, 35], dtype=np.uint8),
        flags=16,
        read_group=2,
    )
    defaults.update(overrides)
    return AlignedRead(**defaults)


def test_roundtrip_basic_fields():
    read = make_read()
    parsed = parse_read(format_read(read))
    assert parsed.name == read.name
    assert parsed.chrom == read.chrom
    assert parsed.pos == read.pos
    assert str(parsed.cigar) == str(read.cigar)
    assert np.array_equal(parsed.seq, read.seq)
    assert np.array_equal(parsed.qual, read.qual)
    assert parsed.flags == read.flags
    assert parsed.read_group == read.read_group


def test_roundtrip_tags():
    read = make_read()
    read.tags["NM"] = 3
    read.tags["UQ"] = 61
    read.tags["MD"] = "2A2"
    parsed = parse_read(format_read(read))
    assert parsed.tags["NM"] == 3
    assert parsed.tags["UQ"] == 61
    assert parsed.tags["MD"] == "2A2"


def test_sam_is_one_based():
    line = format_read(make_read(pos=99))
    assert line.split("\t")[3] == "100"


def test_x_y_chromosomes():
    for chrom, name in ((23, "X"), (24, "Y")):
        read = make_read(chrom=chrom)
        line = format_read(read)
        assert line.split("\t")[2] == name
        assert parse_read(line).chrom == chrom


def test_write_read_stream(small_genome, small_reads):
    buffer = io.StringIO()
    count = write_sam(buffer, small_reads, small_genome)
    assert count == len(small_reads)
    buffer.seek(0)
    parsed = read_sam(buffer)
    assert len(parsed) == len(small_reads)
    for original, roundtrip in zip(small_reads, parsed):
        assert roundtrip.pos == original.pos
        assert str(roundtrip.cigar) == str(original.cigar)


def test_header_lines_written(small_genome):
    buffer = io.StringIO()
    write_sam(buffer, [], small_genome)
    lines = buffer.getvalue().splitlines()
    assert lines and all(line.startswith("@SQ") for line in lines)
