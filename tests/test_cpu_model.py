"""Tests for the calibrated software timing model (Figure 9)."""

import pytest

from repro.perf.cpu_model import (
    FIG9_FRACTIONS,
    PAPER_READS,
    SECONDS_PER_READ,
    THREE_STAGE_SECONDS,
    CpuModel,
)


def test_three_stage_total_matches_paper():
    """The three accelerated stages sum to ~3.5 hours at paper scale
    (Section V-B)."""
    model = CpuModel()
    total = sum(
        model.stage_seconds(stage, PAPER_READS)
        for stage in ("markdup", "metadata", "bqsr_table", "bqsr_update")
    )
    assert total == pytest.approx(THREE_STAGE_SECONDS, rel=1e-9)


def test_fractions_reproduce_figure9_first_bar():
    model = CpuModel()
    breakdown = model.preprocessing_breakdown(PAPER_READS)
    fractions = model.fractions(breakdown)
    for stage, target in FIG9_FRACTIONS.items():
        assert fractions[stage] == pytest.approx(target, abs=0.02), stage


def test_alignment_accelerator_shrinks_alignment():
    """With a GenAx-class aligner, alignment falls to ~0.7% and the three
    stages dominate (~93%, Section IV-A)."""
    model = CpuModel()
    fractions = model.fractions(
        model.preprocessing_breakdown(PAPER_READS, alignment_accelerated=True)
    )
    assert fractions["alignment"] < 0.03
    three = fractions["markdup"] + fractions["metadata"] + \
        fractions["bqsr_table"] + fractions["bqsr_update"]
    assert three > 0.9


def test_scaling_linear_in_reads():
    model = CpuModel()
    assert model.stage_seconds("markdup", 2000) == pytest.approx(
        2 * model.stage_seconds("markdup", 1000)
    )


def test_scaling_with_cores():
    fast = CpuModel(cores=16)
    slow = CpuModel(cores=8)
    assert fast.stage_seconds("metadata", 1e6) == pytest.approx(
        slow.stage_seconds("metadata", 1e6) / 2
    )


def test_unknown_stage():
    with pytest.raises(KeyError):
        CpuModel().stage_seconds("variant_calling", 1)


def test_per_read_costs_plausible():
    # Single-digit microseconds per read on 8 cores.
    for stage in ("markdup", "metadata", "bqsr_table", "bqsr_update"):
        assert 1e-7 < SECONDS_PER_READ[stage] < 1e-4
