"""Unit tests for the BinIDGen custom module (Section IV-D)."""

import pytest

from repro.gatk.bqsr import N_CONTEXTS, n_cycle_values
from repro.hw.flit import Flit
from repro.hw.modules import BinIdGen

from hw_harness import drive

READ_LENGTH = 10
NCV = n_cycle_values(READ_LENGTH)


def run_binid(reads):
    """reads: list of (reverse, seqlen, base_events); base_events are
    (op, base, qual, ridx) tuples."""
    meta = []
    stream = []
    for reverse, seqlen, events in reads:
        meta.append(Flit({"reverse": reverse, "seqlen": seqlen}, last=True))
        for op, base, qual, ridx in events:
            fields = {"op": op, "base": base, "ridx": ridx}
            if qual is not None:
                fields["qual"] = qual
            if op == "M":
                fields["pos"] = 1000 + ridx
            stream.append(Flit(fields))
        stream.append(Flit({}, last=True))
    module = BinIdGen("b", read_length=READ_LENGTH)
    out, _ = drive(module, {"in": stream, "meta": meta})
    return [f for f in out["out"] if f.fields], out["out"]


def test_forward_cycle_is_ridx():
    flits, _ = run_binid([(False, READ_LENGTH, [("M", 2, 30, 3)])])
    assert flits[0]["b1"] == 30 * NCV + 3


def test_reverse_cycle_uses_reverse_range():
    flits, _ = run_binid([(True, READ_LENGTH, [("M", 2, 30, 3)])])
    expected_cycle = READ_LENGTH + (READ_LENGTH - 1 - 3)
    assert flits[0]["b1"] == 30 * NCV + expected_cycle


def test_first_base_has_no_context():
    flits, _ = run_binid([(False, READ_LENGTH, [("M", 2, 30, 0)])])
    assert flits[0]["b2"] == -1


def test_context_encoding_matches_paper():
    # Paper: AA=0, AC=1, AG=2, AT=3, CA=4, ..., TT=15.
    events = [("M", 0, 30, 0), ("M", 1, 30, 1)]  # A then C -> context AC=1
    flits, _ = run_binid([(False, READ_LENGTH, events)])
    assert flits[1]["b2"] == 30 * N_CONTEXTS + 1


def test_context_tracks_through_clips_and_insertions():
    events = [
        ("S", 3, 30, 0),   # clipped T
        ("M", 0, 30, 1),   # A with prev T -> context TA = 3*4+0 = 12
        ("I", 2, 30, 2),   # inserted G
        ("M", 1, 30, 3),   # C with prev G -> context GC = 2*4+1 = 9
    ]
    flits, _ = run_binid([(False, READ_LENGTH, events)])
    assert [f["op"] for f in flits] == ["M", "M"]
    assert flits[0]["b2"] == 30 * N_CONTEXTS + 12
    assert flits[1]["b2"] == 30 * N_CONTEXTS + 9


def test_non_m_flits_dropped():
    events = [("S", 0, 30, 0), ("I", 1, 30, 1), ("D", None, None, -1),
              ("M", 2, 30, 2)]
    flits, _ = run_binid([(False, READ_LENGTH, events)])
    assert len(flits) == 1
    assert flits[0]["op"] == "M"


def test_deletion_does_not_change_context():
    events = [("M", 0, 30, 0), ("D", None, None, -1), ("M", 1, 30, 1)]
    flits, _ = run_binid([(False, READ_LENGTH, events)])
    # Second M's context predecessor is the first M's base (A), not the D.
    assert flits[1]["b2"] == 30 * N_CONTEXTS + 1  # AC


def test_per_read_state_resets():
    reads = [
        (False, READ_LENGTH, [("M", 0, 30, 0), ("M", 1, 30, 1)]),
        (False, READ_LENGTH, [("M", 2, 30, 0)]),
    ]
    flits, raw = run_binid(reads)
    # First base of the second read has no context again.
    assert flits[2]["b2"] == -1
    # Item boundaries preserved: two last flits.
    assert sum(1 for f in raw if f.last) == 2


def test_quality_scales_bins():
    flits, _ = run_binid([(False, READ_LENGTH, [("M", 0, 7, 4)])])
    assert flits[0]["b1"] == 7 * NCV + 4


def test_read_length_validation():
    with pytest.raises(ValueError):
        BinIdGen("b", read_length=0)
