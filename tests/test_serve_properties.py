"""Property tests for the fair-share dispatcher.

Random seeded job-arrival traces drive a stub wave driver (pure
arithmetic, no simulation) through the full service loop, checking the
three scheduler invariants the differential suite cannot sweep:

* **determinism** — the same trace replays to identical event streams,
  dispatch order, and per-tenant cycle accounting;
* **admission safety** — a tenant never holds more than ``quota`` open
  jobs, the service never more than ``max_backlog``, and every reject
  names a genuinely-full limit;
* **weighted fairness / non-starvation** — every dispatch goes to the
  backlogged tenant with minimal normalized service (so no nonempty
  tenant queue can be bypassed indefinitely), and every admitted job
  completes.
"""

from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accel.scheduler import WaveDriver
from repro.hw.engine import RunStats
from repro.serve import JobService, JobSpec


@dataclass(frozen=True)
class StubPartition:
    """The only thing the scheduler reads off a partition is its size."""

    num_rows: int


class StubDriver(WaveDriver):
    """Deterministic arithmetic stand-in for a simulation driver."""

    stage = "stub"
    uses_reference = False

    def empty_result(self, pid):
        return 0

    def run_wave(self, wave, spm_cache):
        results = {pid: 7 * part.num_rows + 13 for pid, part in wave}
        cycles = max(31 * part.num_rows + 11 for _pid, part in wave)
        return results, RunStats(cycles=cycles), 0


#: One arrival: (gap_cycles, tenant index, rows, partitions).
ARRIVALS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5_000),
        st.integers(min_value=0, max_value=4),
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=3),
    ),
    min_size=1,
    max_size=12,
)

QUOTA = 3
BACKLOG = 8
WEIGHTS = {"t0": 2.0, "t1": 1.0}


def _run_trace(trace):
    service = JobService(
        devices=2, workers=1, quota=QUOTA, max_backlog=BACKLOG,
        weights=WEIGHTS,
    )
    at = 0
    for index, (gap, tenant, rows, n_parts) in enumerate(trace):
        at += gap
        partitions = [
            ((index, k), StubPartition(rows * (k + 1)))
            for k in range(n_parts)
        ]
        service.schedule(
            JobSpec(
                tenant=f"t{tenant}",
                driver=StubDriver(),
                partitions=partitions,
                n_pipelines=2,
            ),
            at_cycles=at,
        )
    service.run_until_idle()
    return service


@settings(max_examples=30, deadline=None)
@given(trace=ARRIVALS)
def test_dispatch_replay_is_deterministic(trace):
    first = _run_trace(trace)
    second = _run_trace(trace)
    assert first.events == second.events
    assert first.clock == second.clock
    first_accounts = {
        name: (account.charged_rows, account.cycles, account.completed)
        for name, account in first.queue.accounts.items()
    }
    second_accounts = {
        name: (account.charged_rows, account.cycles, account.completed)
        for name, account in second.queue.accounts.items()
    }
    assert first_accounts == second_accounts


@settings(max_examples=30, deadline=None)
@given(trace=ARRIVALS)
def test_quota_backlog_and_completion_invariants(trace):
    service = _run_trace(trace)
    open_jobs = {}
    job_tenant = {}
    for event, fields in service.events:
        if event == "serve.admit":
            tenant = fields["tenant"]
            job_tenant[fields["job"]] = tenant
            open_jobs[tenant] = open_jobs.get(tenant, 0) + 1
            assert open_jobs[tenant] <= QUOTA
            assert sum(open_jobs.values()) <= BACKLOG
        elif event == "serve.reject":
            tenant = fields["tenant"]
            if fields["reason"] == "tenant_quota":
                assert open_jobs.get(tenant, 0) == QUOTA
            else:
                assert fields["reason"] == "backlog_full"
                assert sum(open_jobs.values()) == BACKLOG
        elif event in ("serve.job.done", "serve.job.failed"):
            open_jobs[fields["tenant"]] -= 1
    admitted = sum(
        1 for event, _fields in service.events if event == "serve.admit"
    )
    done = sum(
        1 for event, _fields in service.events if event == "serve.job.done"
    )
    assert admitted == done  # no faults: every admitted job completes
    assert sum(open_jobs.values()) == 0


@settings(max_examples=30, deadline=None)
@given(trace=ARRIVALS)
def test_every_dispatch_is_weighted_fair(trace):
    """Replay the event stream against an independent WFQ model: each
    dispatch must pick the backlogged tenant with the smallest
    ``charged_rows / weight`` (ties by name) — which is exactly the
    bounded-bypass guarantee that makes starvation impossible."""
    service = _run_trace(trace)
    pending = {}  # job -> waves not yet dispatched
    job_tenant = {}
    charged = {}
    for event, fields in service.events:
        if event == "serve.admit":
            pending[fields["job"]] = fields["waves"]
            job_tenant[fields["job"]] = fields["tenant"]
            charged.setdefault(fields["tenant"], 0)
        elif event == "serve.dispatch":
            backlogged = {
                job_tenant[job] for job, waves in pending.items() if waves
            }
            tenant = fields["tenant"]
            assert tenant in backlogged
            expected = min(
                backlogged,
                key=lambda name: (
                    charged[name] / WEIGHTS.get(name, 1.0), name
                ),
            )
            assert tenant == expected
            pending[fields["job"]] -= 1
            charged[tenant] += fields["cost_rows"]
    assert all(waves == 0 for waves in pending.values())
