"""Tests for the FM-index substrate: suffix array, BWT, search, locate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fmindex import (
    FmIndex,
    SaInterval,
    TERMINATOR,
    bwt_from_suffix_array,
    inverse_bwt,
    prepare_text,
    suffix_array,
)
from repro.genomics.sequences import encode_sequence, random_sequence


def naive_suffix_array(text):
    n = len(text)
    keys = [tuple(-1 if int(v) == TERMINATOR else int(v) for v in text[i:])
            for i in range(n)]
    return np.array(sorted(range(n), key=lambda i: keys[i]), dtype=np.int64)


def test_suffix_array_small():
    text = prepare_text(encode_sequence("BANANA".replace("B", "G").replace("N", "A")))
    # GAAAAA$ is degenerate; use a real sequence instead:
    text = prepare_text(encode_sequence("ACGTACGA"))
    assert suffix_array(text).tolist() == naive_suffix_array(text).tolist()


def test_suffix_array_matches_naive_random():
    rng = np.random.default_rng(51)
    for _ in range(10):
        text = prepare_text(random_sequence(int(rng.integers(1, 200)), rng))
        assert suffix_array(text).tolist() == naive_suffix_array(text).tolist()


def test_prepare_text_rejects_terminator():
    with pytest.raises(ValueError):
        prepare_text(np.array([0, TERMINATOR], dtype=np.uint8))


def test_suffix_array_requires_terminator():
    with pytest.raises(ValueError):
        suffix_array(np.array([0, 1, 2], dtype=np.uint8))


def test_bwt_inverse_roundtrip():
    rng = np.random.default_rng(52)
    for _ in range(5):
        text = prepare_text(random_sequence(int(rng.integers(2, 300)), rng))
        sa = suffix_array(text)
        bwt = bwt_from_suffix_array(text, sa)
        assert np.array_equal(inverse_bwt(bwt), text)


@pytest.fixture(scope="module")
def index_and_ref():
    rng = np.random.default_rng(53)
    ref = random_sequence(1500, rng)
    return FmIndex(ref), ref


def naive_count(ref, pattern):
    pattern = list(int(c) for c in pattern)
    n, m = len(ref), len(pattern)
    return sum(
        1 for i in range(n - m + 1)
        if list(int(c) for c in ref[i:i + m]) == pattern
    )


def test_count_matches_naive(index_and_ref):
    index, ref = index_and_ref
    rng = np.random.default_rng(54)
    for _ in range(15):
        start = int(rng.integers(0, len(ref) - 12))
        length = int(rng.integers(1, 12))
        pattern = ref[start:start + length]
        assert index.count(pattern) == naive_count(ref, pattern)


def test_count_absent_pattern(index_and_ref):
    index, ref = index_and_ref
    # A 40-mer not present (random 40-mers almost surely absent; verify).
    rng = np.random.default_rng(55)
    pattern = random_sequence(40, rng)
    assert index.count(pattern) == naive_count(ref, pattern)


def test_find_returns_exact_positions(index_and_ref):
    index, ref = index_and_ref
    pattern = ref[700:725]
    positions = index.find(pattern)
    assert 700 in positions
    for position in positions:
        assert np.array_equal(ref[position:position + 25], pattern)


def test_locate_limit(index_and_ref):
    index, _ref = index_and_ref
    interval = index.backward_search(np.array([0], dtype=np.uint8))  # all As
    limited = index.locate(interval, limit=5)
    assert len(limited) == 5


def test_occ_consistency(index_and_ref):
    index, _ref = index_and_ref
    # Occ is a non-decreasing step function reaching the total count.
    for c in range(4):
        total = index.occ(c, index.length)
        assert total == int(np.count_nonzero(index.bwt == c))
        previous = 0
        for i in range(0, index.length + 1, 97):
            value = index.occ(c, i)
            assert value >= previous
            previous = value


def test_occ_validation(index_and_ref):
    index, _ref = index_and_ref
    with pytest.raises(ValueError):
        index.occ(9, 0)
    with pytest.raises(IndexError):
        index.occ(0, index.length + 1)


def test_interval_properties():
    assert SaInterval(3, 7).width == 4
    assert SaInterval(5, 5).is_empty
    assert SaInterval(7, 3).width == 0


def test_sampling_rates_validation():
    with pytest.raises(ValueError):
        FmIndex(np.array([0, 1], dtype=np.uint8), occ_sample=0)


@given(st.integers(0, 2**16), st.integers(1, 60), st.integers(1, 8))
@settings(max_examples=25, deadline=None)
def test_backward_search_property(seed, text_len, pat_len):
    rng = np.random.default_rng(seed)
    ref = random_sequence(text_len, rng)
    index = FmIndex(ref, occ_sample=4, sa_sample=3)
    pattern = random_sequence(min(pat_len, text_len), rng)
    expected = naive_count(ref, pattern)
    assert index.count(pattern) == expected
    if expected:
        positions = index.find(pattern)
        assert len(positions) == expected
        for position in positions:
            assert np.array_equal(
                ref[position:position + len(pattern)], pattern
            )
