"""Tests for the critical-path bottleneck analyzer (repro.obs.analyze).

The acceptance test builds a pipeline with a *known* bottleneck — a
fast source feeding a throttled consumer through a small queue — runs
it under the profiler, and checks the analyzer names the throttle as
root with attribution equal to the ProfileReport's stall accounting.
"""

import pytest

from repro.hw.engine import Engine
from repro.hw.flit import Flit
from repro.hw.module import Module
from repro.obs.analyze import analyze_report
from repro.obs.export import report_from_dict, report_to_dict
from repro.obs.profile import (
    MemoryProfile,
    ModuleProfile,
    ProfileReport,
    Profiler,
    QueueProfile,
)

from hw_harness import ListSink, ListSource


class Throttle(Module):
    """Forwards one flit every ``period`` cycles — a deliberate choke."""

    def __init__(self, name: str, period: int):
        super().__init__(name)
        self.period = period
        self._countdown = 0
        self._held = None

    def tick(self, cycle: int) -> None:
        if self._countdown > 0:
            self._countdown -= 1
            self._note_busy()
            return
        if self._held is not None:
            out = self.output()
            if not out.try_push(self._held):
                self._note_stalled(out)
                return
            self._held = None
        queue = self.input()
        if queue.can_pop():
            self._held = queue.pop()
            self._countdown = self.period - 1
            self._note_busy()
        else:
            self._note_starved()

    def is_idle(self) -> bool:
        return self._held is None and self._countdown == 0

    def wants_tick(self) -> bool:
        return not self.is_idle() or self.input().can_pop()


def _flits(n):
    return [Flit({"value": i}) for i in range(n)]


def _profiled_throttle_run(n_flits=60, period=5):
    engine = Engine(default_queue_capacity=2)
    source = ListSource("source", _flits(n_flits))
    throttle = Throttle("throttle", period)
    sink = ListSink("sink")
    for module in (source, throttle, sink):
        engine.add_module(module)
    engine.connect(source, throttle)
    engine.connect(throttle, sink)
    profiler = Profiler(timeline=False)
    profiler.attach(engine)
    engine.run(mode="dense")
    report = profiler.report()
    profiler.detach()
    return report


class TestKnownBottleneck:
    def test_analyzer_names_the_throttle_as_root(self):
        report = _profiled_throttle_run()
        report.validate()
        source = report.module("source")
        assert source.stalled > 0, "choke never backed up — test is vacuous"

        analysis = analyze_report(report)
        assert analysis.root_bottleneck == "throttle"
        # Attribution must match the report's own stall accounting: every
        # stall the source recorded was charged to its output queue, and
        # the chain walker hands exactly that mass to the throttle.
        assert analysis.attributed_stalls["throttle"] == source.stalled
        feed = next(q for q in report.queues if "throttle" in q.name)
        assert feed.full_stalls == source.stalled

    def test_chain_walks_source_to_throttle(self):
        report = _profiled_throttle_run()
        analysis = analyze_report(report)
        chain = next(c for c in analysis.chains if c.module == "source")
        assert chain.root == "throttle"
        assert chain.stalled == report.module("source").stalled
        assert chain.path[0] == "source" and chain.path[-1] == "throttle"

    def test_what_if_bounds(self):
        report = _profiled_throttle_run()
        analysis = analyze_report(report)
        by_module = {w.module: w for w in analysis.what_ifs}
        throttle = by_module["throttle"]
        assert throttle.speedup_bound > 1.0
        # An everything-else-free run still needs the throttle's busy
        # cycles, so no bound may promise more than cycles/busy.
        ceiling = report.cycles / report.module("throttle").busy
        assert throttle.speedup_bound <= ceiling + 1e-9

    def test_survives_json_round_trip(self):
        report = _profiled_throttle_run()
        rebuilt = report_from_dict(report_to_dict(report))
        analysis = analyze_report(rebuilt)
        assert analysis.root_bottleneck == "throttle"
        assert (
            analysis.attributed_stalls["throttle"]
            == report.module("source").stalled
        )

    def test_render_mentions_root_and_chain(self):
        text = analyze_report(_profiled_throttle_run()).render()
        assert "throttle" in text
        assert "root bottleneck" in text


class TestMultiHopChain:
    def test_stall_attributed_through_intermediate_module(self):
        # source -> fast relay (period 1... but choked by q2) -> slow
        # throttle: the source's stalls must walk two hops to the slow end.
        engine = Engine(default_queue_capacity=2)
        source = ListSource("source", _flits(60))
        relay = Throttle("relay", 1)
        slow = Throttle("slow", 6)
        sink = ListSink("sink")
        for module in (source, relay, slow, sink):
            engine.add_module(module)
        engine.connect(source, relay)
        engine.connect(relay, slow)
        engine.connect(slow, sink)
        profiler = Profiler(timeline=False)
        profiler.attach(engine)
        engine.run(mode="dense")
        report = profiler.report()
        profiler.detach()

        assert report.module("source").stalled > 0
        assert report.module("relay").stalled > 0
        analysis = analyze_report(report)
        assert analysis.root_bottleneck == "slow"
        source_chain = next(
            c for c in analysis.chains if c.module == "source"
        )
        assert source_chain.root == "slow"
        # Overlapping upstream stalls attribute as max, never sum.
        assert analysis.attributed_stalls["slow"] == max(
            report.module("source").stalled, report.module("relay").stalled
        )


def _hand_report(modules, queues, edges, cycles=100):
    return ProfileReport(
        name="hand", cycles=cycles, mode="dense", wall_seconds=0.0,
        ticks_executed=0, ticks_possible=0, fast_forward_cycles=0,
        modules=modules, queues=queues,
        memory=MemoryProfile(requests=0, bytes_transferred=0, responses=0),
        edges=edges,
    )


def _module(name, busy=0, stalled=0, starved=0, cycles=100):
    return ModuleProfile(
        name=name, kind="M", busy=busy, starved=starved, stalled=stalled,
        idle=cycles - busy - stalled - starved, flits_out=busy,
    )


class TestHandBuiltReports:
    def test_self_limited_stall_roots_at_itself(self):
        # A module stalled with no stalling output queue (e.g. blocked on
        # memory) is its own root.
        report = _hand_report(
            [_module("lonely", busy=40, stalled=30)],
            [QueueProfile("q", 8, 10, 1, 0)],
            {"q": {"producers": ["lonely"], "consumers": []}},
        )
        analysis = analyze_report(report)
        chain = next(c for c in analysis.chains if c.module == "lonely")
        assert chain.root == "lonely"
        assert "self-limited" in chain.render()

    def test_min_stall_share_filters_noise(self):
        report = _hand_report(
            [_module("a", busy=90, stalled=1), _module("b", busy=50)],
            [], {},
        )
        assert analyze_report(report, min_stall_share=0.05).chains == []
        assert len(analyze_report(report, min_stall_share=0.001).chains) == 1

    def test_empty_report(self):
        analysis = analyze_report(_hand_report([], [], {}))
        assert analysis.root_bottleneck is None
        assert analysis.chains == []
        assert analysis.render()  # must not crash

    def test_ranking_orders_by_busy(self):
        report = _hand_report(
            [_module("a", busy=10), _module("b", busy=90)], [], {},
        )
        analysis = analyze_report(report)
        assert analysis.ranking[0] == "b"
        assert analysis.root_bottleneck == "b"

    def test_backpressure_outweighs_raw_busy(self):
        # "slow" is less busy than "burst" but absorbs a huge stall mass;
        # busy + attributed stalls make it the root bottleneck.
        report = _hand_report(
            [
                _module("burst", busy=50, stalled=45),
                _module("slow", busy=40, starved=5),
            ],
            [QueueProfile("burst->slow", 2, 50, 2, 45)],
            {"burst->slow": {"producers": ["burst"], "consumers": ["slow"]}},
        )
        analysis = analyze_report(report)
        assert analysis.root_bottleneck == "slow"
        assert analysis.attributed_stalls["slow"] == 45
        what_if = next(w for w in analysis.what_ifs if w.module == "slow")
        assert what_if.speedup_bound == pytest.approx(100 / (100 - 45))


class TestSqlOperatorAttribution:
    """sql_operator_seconds/rows counters folded into the per-backend
    per-operator table ``repro analyze`` renders."""

    def _metrics(self):
        from repro.obs.registry import MetricsRegistry

        metrics = MetricsRegistry()
        metrics.counter(
            "sql_operator_seconds", op="join", backend="fast"
        ).inc(0.25)
        metrics.counter(
            "sql_operator_rows", op="join", backend="fast"
        ).inc(1000)
        metrics.counter(
            "sql_operator_seconds", op="scan", backend="fast"
        ).inc(0.75)
        metrics.counter(
            "sql_operator_seconds", op="join", backend="reference"
        ).inc(3.0)
        return metrics

    def test_attribution_shape(self):
        from repro.obs.analyze import sql_operator_attribution

        attribution = sql_operator_attribution(self._metrics())
        assert set(attribution) == {"fast", "reference"}
        assert attribution["fast"]["join"] == {
            "seconds": 0.25, "rows": 1000.0,
        }
        assert attribution["fast"]["scan"]["seconds"] == 0.75
        assert attribution["reference"]["join"]["rows"] == 0.0

    def test_attribution_empty_registry(self):
        from repro.obs.analyze import sql_operator_attribution
        from repro.obs.registry import MetricsRegistry

        assert sql_operator_attribution(MetricsRegistry()) == {}

    def test_render_sorts_ops_by_seconds(self):
        from repro.obs.analyze import (
            render_sql_attribution,
            sql_operator_attribution,
        )

        text = render_sql_attribution(
            sql_operator_attribution(self._metrics())
        )
        lines = text.splitlines()
        assert lines[0] == "sql backend fast: 1.0000s"
        # scan (0.75s) outranks join (0.25s) within the fast backend.
        assert lines[1].split()[0] == "scan"
        assert lines[2].split()[0] == "join"
        assert "75.0%" in lines[1]
        assert "1000 rows" in lines[2]
        assert any("reference" in line for line in lines)


class TestDeviceWhatIf:
    def test_lpt_bound_over_device_counts(self):
        from repro.obs.analyze import device_what_if

        # LPT over [4, 3, 2, 1] on 2 devices: loads (4+1, 3+2) -> makespan 5
        what_ifs = device_what_if([4, 3, 2, 1], device_counts=(1, 2, 4))
        by_count = {w.module: w for w in what_ifs}
        assert by_count["devices=1"].speedup_bound == pytest.approx(1.0)
        assert by_count["devices=2"].speedup_bound == pytest.approx(10 / 5)
        # 4 devices: makespan is the largest wave -> 10/4 = 2.5x
        assert by_count["devices=4"].speedup_bound == pytest.approx(10 / 4)
        assert by_count["devices=4"].saved_cycles == 6

    def test_one_huge_wave_caps_scaling(self):
        from repro.obs.analyze import device_what_if

        what_ifs = device_what_if([100, 1, 1], device_counts=(8,))
        assert what_ifs[0].speedup_bound == pytest.approx(102 / 100)

    def test_empty_and_bogus_inputs(self):
        from repro.obs.analyze import device_what_if

        assert device_what_if([]) == []
        assert device_what_if([0, 0]) == []
        assert device_what_if([5], device_counts=(0, -1)) == []


class TestShardingReport:
    def _sharded_ledger(self, tmp_path):
        from repro.obs.ledger import RunLedger, RunManifest, run_context
        from repro.accel.scheduler import MetadataWaveDriver
        from repro.accel.sharding import run_sharded
        from repro.eval.workloads import make_workload

        workload = make_workload(
            n_reads=60, read_length=50, chromosomes=(21,),
            genome_scale=2.5e-5, psize=1000, seed=17,
        )
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        manifest = RunManifest(workload="sharding-test", workers=1)
        driver = MetadataWaveDriver(reference=workload.reference)
        with run_context(manifest, ledger):
            _res, stats = run_sharded(
                driver, workload.partitions, 2, devices=2, workers=1
            )
        return ledger, stats

    def test_report_reconstructs_the_run(self, tmp_path):
        from repro.obs.analyze import sharding_report_from_ledger

        ledger, stats = self._sharded_ledger(tmp_path)
        report = sharding_report_from_ledger(ledger)
        assert report.stage == "metadata"
        assert report.devices == 2
        assert report.waves == stats.waves
        assert report.total_cycles == stats.total_cycles
        assert report.steals == stats.steal_count
        assert len(report.per_device) == 2
        assert [d.device for d in report.per_device] == [0, 1]
        assert max(d.utilization for d in report.per_device) == pytest.approx(1.0)
        assert report.what_ifs, "expected Amdahl what-ifs over device count"
        speedups = {w.module: w.speedup_bound for w in report.what_ifs}
        assert speedups["devices=1"] == pytest.approx(1.0)

    def test_render_mentions_devices_and_what_ifs(self, tmp_path):
        from repro.obs.analyze import sharding_report_from_ledger

        ledger, _stats = self._sharded_ledger(tmp_path)
        text = sharding_report_from_ledger(ledger).render()
        assert "sharding analysis: metadata" in text
        assert "d0" in text and "d1" in text
        assert "what-if: " in text

    def test_empty_ledger_raises(self, tmp_path):
        from repro.obs.analyze import sharding_report_from_ledger
        from repro.obs.ledger import RunLedger

        ledger = RunLedger(str(tmp_path / "empty.jsonl"))
        with pytest.raises(ValueError, match="no shard.run events"):
            sharding_report_from_ledger(ledger)
