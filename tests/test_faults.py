"""Unit tests for the fault-injection layer (repro.faults) and the
runtime's transfer/launch retries.

The determinism contract under test everywhere: same seed + same plan
=> same injected faults, same retry backoffs, same virtual-timeline
charges.  See DESIGN.md §3.5.
"""

import pickle

import pytest

from repro.faults import (
    DEFAULT_SITES,
    FAULT_EXCEPTIONS,
    FAULT_KINDS,
    NO_RETRY,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    InjectedTransferError,
    InjectedWorkerCrash,
    RetryBudgetExceeded,
    RetryPolicy,
)
from repro.obs.registry import MetricsRegistry
from repro.runtime import GenesisRuntime

# -- the spec grammar ----------------------------------------------------------------


def test_parse_full_grammar():
    spec = FaultSpec.parse("worker_crash:2@scheduler.wave+3~4")
    assert spec.kind == "worker_crash"
    assert spec.count == 2
    assert spec.site == "scheduler.wave"
    assert spec.attempts == 3
    assert spec.spread == 4


def test_parse_defaults_site_per_kind():
    for kind in FAULT_KINDS:
        spec = FaultSpec.parse(kind)
        assert spec.site == DEFAULT_SITES[kind]
        assert spec.count == 1 and spec.attempts == 1 and spec.spread == 0


def test_render_round_trips():
    for text in (
        "worker_crash@scheduler.wave",
        "transfer_error:3@runtime.transfer+2",
        "wave_timeout@scheduler.wave~5",
    ):
        assert FaultSpec.parse(text).render() == text


@pytest.mark.parametrize("bad", ["", "frobnicate", "worker_crash:0",
                                 "worker_crash+0", "worker_crash~-1"])
def test_parse_rejects(bad):
    with pytest.raises(ValueError):
        FaultSpec.parse(bad)


def test_plan_from_spec_multi_item():
    plan = FaultPlan.from_spec("worker_crash, transfer_error:2", seed=9)
    assert [s.kind for s in plan.specs] == ["worker_crash", "transfer_error"]
    assert plan.seed == 9
    assert set(plan.sites()) == {"scheduler.wave", "runtime.transfer"}
    assert plan.for_site("runtime.transfer")[0].count == 2
    with pytest.raises(ValueError):
        FaultPlan.from_spec("  ,  ")


# -- target determinism --------------------------------------------------------------


def test_targets_same_seed_same_slots():
    spec = FaultSpec.parse("worker_crash:4~6")
    assert FaultPlan(seed=3).targets(spec) == FaultPlan(seed=3).targets(spec)


def test_targets_without_spread_are_first_slots():
    spec = FaultSpec.parse("transfer_error:3")
    assert FaultPlan(seed=42).targets(spec) == (0, 1, 2)


def test_targets_with_spread_are_strictly_increasing():
    spec = FaultSpec.parse("worker_crash:5~4")
    slots = FaultPlan(seed=7).targets(spec)
    assert len(slots) == 5
    assert all(b > a for a, b in zip(slots, slots[1:]))
    assert all(b - a <= 5 for a, b in zip(slots, slots[1:]))


def test_explicit_at_overrides_seed():
    spec = FaultSpec("worker_crash", at=(5, 2, 5))
    assert FaultPlan(seed=1).targets(spec) == (2, 5)


def test_describe_names_every_spec():
    plan = FaultPlan.from_spec("worker_crash,launch_error", seed=2)
    lines = list(plan.describe())
    assert len(lines) == 2
    assert "worker_crash" in lines[0] and "launch_error" in lines[1]
    assert plan.render() == "worker_crash@scheduler.wave,launch_error@runtime.launch"


# -- the injector --------------------------------------------------------------------


def test_next_slot_counts_per_site():
    injector = FaultInjector(FaultPlan())
    assert [injector.next_slot("a"), injector.next_slot("a")] == [0, 1]
    assert injector.next_slot("b") == 0


def test_poll_hits_only_planned_coordinates():
    plan = FaultPlan.from_spec("transfer_error:2+2", seed=0)
    injector = FaultInjector(plan)
    site = "runtime.transfer"
    assert injector.poll(site, 0, 0).kind == "transfer_error"
    assert injector.poll(site, 0, 1) is not None  # attempts=2
    assert injector.poll(site, 0, 2) is None
    assert injector.poll(site, 1, 0) is not None
    assert injector.poll(site, 2, 0) is None
    assert injector.poll("scheduler.wave", 0, 0) is None


def test_poll_records_once_per_coordinate():
    injector = FaultInjector(
        FaultPlan.from_spec("worker_crash"), registry=(reg := MetricsRegistry())
    )
    for _ in range(3):
        assert injector.poll("scheduler.wave", 0, 0) is not None
    assert len(injector.injected) == 1
    assert injector.counts_by_kind() == {"worker_crash": 1}
    assert reg.total("faults.injected") == 1


def test_fire_raises_typed_exception():
    injector = FaultInjector(FaultPlan.from_spec("worker_crash"))
    with pytest.raises(InjectedWorkerCrash) as excinfo:
        injector.fire("scheduler.wave", 0, 0)
    assert excinfo.value.slot == 0
    injector.fire("scheduler.wave", 9, 0)  # clean coordinate: no raise


def test_injected_errors_survive_pickling():
    """The exceptions cross ProcessPoolExecutor futures; a default
    reduce would replay the message into __init__ and break the pool."""
    for cls in FAULT_EXCEPTIONS.values():
        error = pickle.loads(pickle.dumps(cls("some.site", 3, 1)))
        assert isinstance(error, cls) and isinstance(error, InjectedFaultError)
        assert (error.site, error.slot, error.attempt) == ("some.site", 3, 1)


# -- the retry policy ----------------------------------------------------------------


def test_backoff_is_deterministic_and_grows():
    policy = RetryPolicy(backoff_base=0.01, backoff_multiplier=2.0,
                         jitter=0.25, max_backoff=10.0, seed=5)
    first = [policy.backoff_seconds(0, attempt) for attempt in range(4)]
    again = [policy.backoff_seconds(0, attempt) for attempt in range(4)]
    assert first == again
    assert all(b > a for a, b in zip(first, first[1:]))
    # jitter stays within its band
    for attempt, backoff in enumerate(first):
        base = 0.01 * 2.0 ** attempt
        assert base <= backoff <= base * 1.25


def test_backoff_caps_at_max():
    policy = RetryPolicy(backoff_base=1.0, backoff_multiplier=10.0,
                         jitter=0.0, max_backoff=2.5)
    assert policy.backoff_seconds(0, 3) == 2.5


def test_sleep_uses_injected_clock():
    policy = RetryPolicy(backoff_base=0.25, jitter=0.0)
    slept = []
    assert policy.sleep(0, 0, clock=slept.append) == 0.25
    assert slept == [0.25]
    assert NO_RETRY.sleep(0, 0, clock=slept.append) == 0.0
    assert slept == [0.25]


@pytest.mark.parametrize("kwargs", [
    dict(max_retries=-1), dict(backoff_base=-0.1),
    dict(backoff_multiplier=0.5), dict(jitter=1.5), dict(max_backoff=-1.0),
])
def test_policy_validation(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


# -- runtime transfer/launch retries -------------------------------------------------


def _kernel(inputs):
    return {"out": sum(inputs["col"])}, 1000


def _run_pipeline(injector=None, registry=None, max_retries=2):
    runtime = GenesisRuntime(
        registry=registry,
        fault_injector=injector,
        retry_policy=RetryPolicy(
            max_retries=max_retries, backoff_base=0.001, jitter=0.25, seed=1
        ),
    )
    runtime.register_pipeline(0, _kernel)
    runtime.configure_mem([1, 2, 3], 8, 3, "col", 0)
    runtime.configure_mem(None, 8, 1, "out", 0, is_output=True)
    runtime.run_genesis(0)
    return runtime.genesis_flush(0), runtime


def test_transfer_retry_charges_timeline_and_preserves_results():
    clean_out, clean = _run_pipeline()
    registry = MetricsRegistry()
    injector = FaultInjector(FaultPlan.from_spec("transfer_error+2", seed=4))
    faulted_out, faulted = _run_pipeline(injector, registry)
    assert faulted_out == clean_out
    # two failed DMA attempts occupied the link, plus backoff host time
    failed = [t for t in faulted.device.transfers if not t.ok]
    assert len(failed) == 2
    assert faulted.device.timeline.transfer_seconds > (
        clean.device.timeline.transfer_seconds
    )
    assert faulted.elapsed_seconds > clean.elapsed_seconds
    assert registry.total("runtime.retries") == 2
    assert registry.value("runtime.faults", site="runtime.transfer") == 2
    assert registry.total("runtime.retry_transfer_seconds") > 0


def test_faulted_timeline_is_deterministic():
    def run():
        injector = FaultInjector(
            FaultPlan.from_spec("transfer_error+1,launch_error", seed=4)
        )
        return _run_pipeline(injector)[1].elapsed_seconds

    assert run() == run()


def test_launch_retry_counts_and_recovers():
    registry = MetricsRegistry()
    injector = FaultInjector(FaultPlan.from_spec("launch_error", seed=0))
    out, runtime = _run_pipeline(injector, registry)
    assert out == _run_pipeline()[0]
    assert registry.value("runtime.retries", site="runtime.launch") == 1
    assert [f.kind for f in injector.injected] == ["launch_error"]


def test_transfer_budget_exhaustion_raises():
    injector = FaultInjector(FaultPlan.from_spec("transfer_error+9", seed=0))
    with pytest.raises(RetryBudgetExceeded) as excinfo:
        _run_pipeline(injector, max_retries=1)
    assert isinstance(excinfo.value.__cause__, InjectedTransferError)


def test_registry_total_sums_across_labels():
    registry = MetricsRegistry()
    registry.counter("x", a=1).inc(2)
    registry.counter("x", a=2).inc(3)
    assert registry.total("x") == 5
    assert registry.total("missing", default=-1) == -1
