"""Figures 4, 5, and 7: the worked example query.

Runs the count-matching-bases query three ways — the extended-SQL script
through the software executor (Figure 4), the plain software reference
(Figure 5's flow), and the simulated Figure 7 hardware pipeline — and
checks all three agree, with the pipeline sustaining ~1 base/cycle.
"""

from repro.accel.example_query import count_matching_bases_sw, run_example_query
from repro.sql.queries import run_figure4_query
from repro.tables.genomic_tables import count_bases


def _largest_partition(workload):
    return max(
        ((pid, part) for pid, part in workload.partitions),
        key=lambda item: item[1].num_rows,
    )


def test_figure5_example_query_three_way(benchmark, report, small_bench_workload):
    workload = small_bench_workload
    pid, part = _largest_partition(workload)
    ref_row = workload.reference.lookup(pid)

    hw_result = benchmark(run_example_query, part, ref_row)

    sw_counts = count_matching_bases_sw(part, ref_row)
    sql_counts = run_figure4_query(workload.partitions, workload.reference, pid)
    assert hw_result.counts == sw_counts == sql_counts

    bases = count_bases(part)
    cpb = hw_result.run.stats.cycles / bases
    assert cpb < 2.0  # "a single base pair per cycle" (Section III-D)

    report("Figures 4/5/7 - example query (count matching bases)", [
        f"partition {pid}: {part.num_rows} reads, {bases} bases",
        f"SQL executor == software == simulated HW pipeline: "
        f"{hw_result.counts[:6]}...",
        f"pipeline cycles: {hw_result.run.stats.cycles} "
        f"({cpb:.2f} cycles/base; paper claims 1 bp/cycle)",
    ])
