"""Ablation: on-chip SPM data reuse (Section III-D's allocation hint).

Genesis maps the reference partition to an SPM so every read's interval is
served on chip.  Without the SPM, each read would re-stream its reference
span from memory.  This ablation measures the actual SPM read traffic of
the metadata pipeline and compares it with the off-chip bytes a no-SPM
design would need, quantifying the reuse the paper's design exploits.
"""

from repro.accel.metadata import run_metadata_update
from repro.tables.genomic_tables import count_bases


def _measure(workload):
    total_spm_reads = 0
    total_span = 0
    spm_load_words = 0
    memory_bytes = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        ref_row = workload.reference.lookup(pid)
        result = run_metadata_update(part, ref_row)
        spm = result.run.pipeline.modules["mu.spmread"].spm
        total_spm_reads += spm.reads
        spm_load_words += len(ref_row["SEQ"])
        memory_bytes += result.run.stats.memory_bytes
        starts = part.column("POS").tolist()
        ends = part.column("ENDPOS").tolist()
        total_span += sum(e - s + 1 for s, e in zip(starts, ends))
    return {
        "spm_reads": total_spm_reads,
        "spm_load_words": spm_load_words,
        "no_spm_bytes": total_span,  # 1 byte/base if re-streamed from DRAM
        "memory_bytes": memory_bytes,
    }


def test_ablation_spm_reuse(benchmark, report, small_bench_workload):
    result = benchmark(_measure, small_bench_workload)

    # The SPM serves every per-read interval on chip...
    assert result["spm_reads"] >= result["no_spm_bytes"]
    # ...after loading each reference word exactly once from memory.
    reuse = result["spm_reads"] / max(1, result["spm_load_words"])
    assert reuse > 1.0  # coverage > 1x means genuine reuse

    report("Ablation - SPM reference reuse (metadata pipeline)", [
        f"reference words loaded into SPM once: {result['spm_load_words']}",
        f"on-chip SPM reads served: {result['spm_reads']}",
        f"reuse factor: {reuse:.2f}x (grows linearly with coverage depth; "
        "NA12878 at ~34x coverage reuses each word ~34x)",
        f"off-chip bytes a no-SPM design would stream: {result['no_spm_bytes']}",
    ])
