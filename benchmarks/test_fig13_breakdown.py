"""Figure 13(b): runtime breakdown of the Genesis accelerated stages into
host software, PCIe communication, and accelerator compute."""

import pytest

from repro.eval.experiments import PAPER_TARGETS, measure_cycles_per_base
from repro.perf.cpu_model import PAPER_READS
from repro.perf.timing import model_stage


def _breakdowns(workload):
    out = {}
    for stage in ("markdup", "metadata", "bqsr_table"):
        cpb = measure_cycles_per_base(stage, workload).cycles_per_base
        out[stage] = model_stage(stage, PAPER_READS, 151, cpb)
    return out


def test_figure13b_breakdown(benchmark, report, small_bench_workload):
    timings = benchmark(_breakdowns, small_bench_workload)

    markdup = timings["markdup"].breakdown()
    # "the un-accelerated software portion of the stage (takes 99.35% of
    # the runtime) works as a bottleneck".
    assert markdup["host"] > 0.9

    metadata = timings["metadata"].breakdown()
    assert metadata["pcie"] == pytest.approx(
        PAPER_TARGETS["pcie_fraction"]["metadata"], abs=0.12
    )

    bqsr = timings["bqsr_table"].breakdown()
    assert bqsr["pcie"] == pytest.approx(
        PAPER_TARGETS["pcie_fraction"]["bqsr_table"], abs=0.12
    )

    lines = []
    for stage, timing in timings.items():
        b = timing.breakdown()
        lines.append(
            f"{stage}: host {b['host']:.1%}, pcie {b['pcie']:.1%}, "
            f"hw {b['hw']:.1%} (total {timing.total_seconds:.0f}s modelled)"
        )
    lines.append("paper: markdup host 99.35%; metadata pcie 53.4%; "
                 "bqsr pcie 29.5%")
    report("Figure 13(b) - accelerated-stage runtime breakdown", lines)
