"""Figure 13(c)/(d): per-chromosome speedups for metadata update and BQSR.

The per-chromosome cycle simulations drive the model; chromosome workload
shares follow GRCh38 proportions, so chr1 carries ~5x chr21's reads.
"""

from repro.eval.experiments import figure13_per_chromosome
from repro.genomics.reference import chromosome_name


def _both(workload):
    return {
        "metadata": figure13_per_chromosome(workload, "metadata"),
        "bqsr_table": figure13_per_chromosome(workload, "bqsr_table"),
    }


def test_figure13cd_per_chromosome(benchmark, report, bench_workload):
    result = benchmark(_both, bench_workload)

    lines = []
    for stage, target_range in (("metadata", (8, 40)), ("bqsr_table", (5, 25))):
        speedups = result[stage]
        assert len(speedups) >= 20  # nearly all chromosomes covered
        low, high = target_range
        for chrom, speedup in speedups.items():
            assert low < speedup < high, (stage, chrom, speedup)
        spread = max(speedups.values()) / min(speedups.values())
        # Per-chromosome variation exists but stays modest, as in the figure.
        assert spread < 2.0
        series = ", ".join(
            f"chr{chromosome_name(chrom)}={speedup:.1f}x"
            for chrom, speedup in sorted(speedups.items())
        )
        lines.append(f"{stage}: {series}")
        lines.append(
            f"  mean {sum(speedups.values()) / len(speedups):.1f}x, "
            f"spread {spread:.2f}x "
            f"(paper overall: {'19.25x' if stage == 'metadata' else '12.59x'})"
        )
    report("Figure 13(c,d) - per-chromosome speedups", lines)
