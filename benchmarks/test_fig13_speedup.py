"""Figure 13(a): speedup of the three Genesis accelerators over GATK4.

Cycles-per-base is measured by running the actual Figure 10/11/12
pipelines in the cycle simulator on the benchmark workload, then the
timing model extrapolates to the paper's 700 M-read scale.
"""

import pytest

from repro.eval.experiments import PAPER_TARGETS, figure13


def test_figure13a_speedups(benchmark, report, small_bench_workload):
    result = benchmark(figure13, workload=small_bench_workload)

    timings = result["pcie3"]
    targets = PAPER_TARGETS["speedup"]
    lines = []
    for stage, target in targets.items():
        speedup = timings[stage].speedup
        # Shape: right winner, right ballpark (within ~40% of published).
        assert speedup == pytest.approx(target, rel=0.4), stage
        lines.append(
            f"{stage}: {speedup:.2f}x (paper {target}x)"
        )
    assert timings["metadata"].speedup > timings["bqsr_table"].speedup
    assert timings["bqsr_table"].speedup > timings["markdup"].speedup

    pcie4 = result["pcie4"]
    for stage, target in PAPER_TARGETS["speedup_pcie4"].items():
        speedup = pcie4[stage].speedup
        assert speedup == pytest.approx(target, rel=0.4), stage
        lines.append(f"{stage} (PCIe 4.0 what-if): {speedup:.2f}x (paper ~{target}x)")

    report("Figure 13(a) - speedup over GATK4 on 8-core Xeon", lines)
