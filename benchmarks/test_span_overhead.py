"""Trace-span layer overhead: disabled tracing must be free.

Instrumented code (``run_partitioned``, ``run_sharded``, the SQL
executor, the job service) pays one ``active_spans().enabled`` check
per wave/operator when no recorder is installed.  Mirroring the
metrics-overhead gate in ``test_sim_throughput.py``: two interleaved
best-of-4 samples of the untraced path must agree within 5% — a
systematic span tax would show up as a stable gap between them.  The
traced cost is recorded alongside for the trajectory, and tracing must
never perturb the virtual timeline (bit-identical cycle counts).
"""

import time

from repro.accel.scheduler import MetadataWaveDriver, run_partitioned
from repro.eval.workloads import make_workload
from repro.obs import SpanRecorder, tracing


def _workload():
    return make_workload(
        n_reads=160,
        read_length=80,
        genome_scale=4.5e-5,
        psize=2000,
        seed=2021,
    )


def test_spans_disabled_zero_overhead(benchmark, report):
    workload = _workload()
    driver = MetadataWaveDriver(reference=workload.reference)

    def time_once(traced):
        recorder = SpanRecorder(enabled=traced)
        start = time.perf_counter()
        with tracing(recorder):
            _results, stats = run_partitioned(
                driver, workload.partitions, 8
            )
        wall = time.perf_counter() - start
        return wall, stats.cycles_including_load, len(recorder)

    # Warm up, then interleave the two untraced samples — alternating
    # which goes first — so drift and ordering effects hit both equally.
    time_once(False)
    sample_a, sample_b = [], []
    for i in range(4):
        first, second = (
            (sample_a, sample_b) if i % 2 == 0 else (sample_b, sample_a)
        )
        first.append(time_once(False))
        second.append(time_once(False))
    base_wall, base_cycles, base_spans = min(sample_a)
    check_wall, check_cycles, _ = min(sample_b)
    assert base_cycles == check_cycles
    assert base_spans == 0  # a disabled recorder records nothing

    traced_runs = []

    def run_traced():
        traced_runs.append(time_once(True))

    benchmark.pedantic(run_traced, rounds=3, iterations=1)
    traced_wall, traced_cycles, traced_spans = min(traced_runs)
    assert traced_cycles == base_cycles  # tracing never perturbs timing
    assert traced_spans > 0

    ratio = check_wall / base_wall
    assert ratio <= 1.05, (
        f"untraced span path regressed: {ratio:.3f}x between two "
        "samples of the same configuration"
    )
    traced_ratio = traced_wall / base_wall

    benchmark.extra_info.update(
        untraced_seconds=round(base_wall, 4),
        untraced_check_ratio=round(ratio, 4),
        traced_seconds=round(traced_wall, 4),
        traced_overhead=round(traced_ratio, 3),
        traced_spans=traced_spans,
        simulated_cycles=base_cycles,
    )
    report("Span overhead - untraced vs traced run", [
        f"untraced: {base_wall:.3f}s (A/A ratio {ratio:.3f}x, gate 1.05x)",
        f"traced:   {traced_wall:.3f}s ({traced_ratio:.2f}x of untraced, "
        f"{traced_spans} spans laid)",
        f"simulated cycles identical at {base_cycles}",
    ])
