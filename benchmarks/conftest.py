"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures: it runs
the reproduction pipeline (cycle simulation + models), registers the
reproduced rows/series alongside the published values through the
``report`` fixture, and asserts the shape.  All registered tables are
printed in the terminal summary so ``pytest benchmarks/ --benchmark-only``
ends with the full reproduced evaluation.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.eval.workloads import make_workload

_REPORTS: List[Tuple[str, List[str]]] = []


@pytest.fixture
def report():
    """Register a reproduced table: ``report(title, lines)``."""

    def add(title: str, lines) -> None:
        _REPORTS.append((title, list(lines)))

    return add


@pytest.fixture(scope="session")
def bench_workload():
    """The standard benchmark workload: all 24 chromosomes at GRCh38
    proportions, several partitions per chromosome."""
    return make_workload(
        n_reads=240,
        read_length=80,
        genome_scale=4.5e-5,
        psize=4000,
        seed=2020,
    )


@pytest.fixture(scope="session")
def small_bench_workload():
    """A single-chromosome workload for the heavier cycle simulations."""
    return make_workload(
        n_reads=100,
        read_length=80,
        chromosomes=(20,),
        genome_scale=4.5e-5,
        psize=4000,
        seed=2021,
    )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables & figures")
    for title, lines in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(title)
        terminalreporter.write_line("-" * len(title))
        for line in lines:
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
