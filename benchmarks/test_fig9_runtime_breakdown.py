"""Figure 9: runtime breakdown of GATK4 preprocessing, with and without an
alignment accelerator."""

import pytest

from repro.eval.experiments import PAPER_TARGETS, figure9_breakdown


def test_figure9_runtime_breakdown(benchmark, report):
    result = benchmark(figure9_breakdown)

    plain = result["gatk4"]
    accel = result["gatk4_with_alignment_accel"]
    targets = PAPER_TARGETS["fig9_fractions"]
    for stage, target in targets.items():
        assert plain[stage] == pytest.approx(target, abs=0.03), stage
    # "the portion of time spent on the alignment stage shrinks to merely
    # 0.7%" and the three stages "account for the majority (93%)".
    assert accel["alignment"] < 0.03
    three = accel["markdup"] + accel["metadata"] + accel["bqsr_table"] + \
        accel["bqsr_update"]
    assert three > 0.9

    def fmt(fractions):
        return ", ".join(
            f"{stage} {fraction:.1%}" for stage, fraction in fractions.items()
        )

    report("Figure 9 - GATK4 preprocessing runtime breakdown (8 cores)", [
        "without alignment accel: " + fmt(plain),
        "paper:                   alignment 63.4%, markdup 10.0%, "
        "metadata 15.4%, bqsr_table 4.6%, bqsr_update 4.3%",
        "with alignment accel:    " + fmt(accel),
        "paper:                   alignment 0.7%, markdup 27.2%, "
        "metadata 41.8%, bqsr_table 12.4%, bqsr_update 11.6%",
    ])
