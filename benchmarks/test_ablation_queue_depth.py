"""Ablation: hardware queue depth.

The dataflow pipelines tolerate producer/consumer rate mismatches through
their queues; this ablation sweeps the queue capacity and shows that
shallow queues cost cycles (back-pressure bubbles) while depth beyond a
handful of entries buys nothing — the justification for small on-chip
FIFOs in the resource model.
"""

from repro.accel.common import load_reference_spm, spm_base
from repro.accel.example_query import (
    build_example_pipeline,
    configure_example_streams,
    count_matching_bases_sw,
)
from repro.hw.engine import Engine
from repro.hw.memory import MemorySystem


def _run_with_depth(workload, capacity):
    pid, part = max(
        ((p, t) for p, t in workload.partitions), key=lambda x: x[1].num_rows
    )
    ref_row = workload.reference.lookup(pid)
    spm, _ = load_reference_spm(ref_row)
    engine = Engine(MemorySystem(), default_queue_capacity=capacity)
    pipe = build_example_pipeline(engine, "q", spm, spm_base(ref_row))
    configure_example_streams(pipe, part)
    stats = engine.run()
    counts = [int(item[0]) for item in pipe.modules["q.writer"].items]
    assert counts == count_matching_bases_sw(part, ref_row)
    return stats.cycles


def _sweep(workload):
    return {depth: _run_with_depth(workload, depth) for depth in (1, 2, 4, 8, 32)}


def test_ablation_queue_depth(benchmark, report, small_bench_workload):
    cycles = benchmark(_sweep, small_bench_workload)

    # Depth-1 queues serialize every hop; deeper queues recover throughput.
    assert cycles[1] > cycles[4]
    # Diminishing returns: beyond depth 8, less than 5% improvement.
    assert cycles[32] > 0.95 * cycles[8]

    lines = [
        f"queue depth {depth:>2}: {count} cycles "
        f"({cycles[1] / count:.2f}x vs depth 1)"
        for depth, count in sorted(cycles.items())
    ]
    lines.append("correctness is depth-independent; depth ~8 suffices")
    report("Ablation - queue depth vs pipeline cycles", lines)
