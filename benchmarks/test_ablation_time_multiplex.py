"""Ablation: time-multiplexing multiple accelerators on one FPGA.

Section V-B: "It is also possible to exploit the under-utilized
configuration and place multiple Genesis accelerators targeting different
operations in a single FPGA so that users can time-multiplex the
accelerators and avoid reprogramming."  This bench checks which
combinations fit the VU9P under the resource model (the shell is shared,
the pipelines add).
"""

from itertools import combinations

from repro.eval.experiments import table4_estimates
from repro.hw.resources import (
    SHELL_COST,
    VU9P_BRAM_BYTES,
    VU9P_LUTS,
    VU9P_REGISTERS,
)


def _packings():
    estimates = table4_estimates()
    results = {}
    names = sorted(estimates)
    for r in (2, 3):
        for combo in combinations(names, r):
            total_luts = SHELL_COST.luts
            total_regs = SHELL_COST.registers
            total_bram = SHELL_COST.bram_bytes
            for name in combo:
                vector = estimates[name]
                total_luts += vector.luts - SHELL_COST.luts
                total_regs += vector.registers - SHELL_COST.registers
                total_bram += vector.bram_bytes - SHELL_COST.bram_bytes
            results[combo] = (
                total_luts,
                total_regs,
                total_bram,
                total_luts <= VU9P_LUTS
                and total_regs <= VU9P_REGISTERS
                and total_bram <= VU9P_BRAM_BYTES,
            )
    return results


def test_ablation_time_multiplexing(benchmark, report):
    packings = benchmark(_packings)

    lines = []
    fits_count = 0
    for combo, (luts, regs, bram, fits) in sorted(packings.items()):
        fits_count += bool(fits)
        lines.append(
            f"{' + '.join(combo)}: {luts / 1000:.0f}K LUTs, "
            f"{bram / 1048576:.1f}MB BRAM -> {'FITS' if fits else 'does not fit'}"
        )
    # At least one pair co-resides (the paper's under-utilization claim);
    # full-width side-by-side of all three exceeds the fabric.
    assert fits_count >= 1
    pair_fits = any(
        fits for combo, (_l, _r, _b, fits) in packings.items() if len(combo) == 2
    )
    assert pair_fits
    lines.append("co-residency avoids FPGA reprogramming between stages "
                 "(Section V-B)")
    report("Ablation - multi-accelerator packing on one VU9P", lines)
