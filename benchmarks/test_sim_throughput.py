"""Host simulator throughput: event-driven vs dense scheduling.

Not a paper figure — this benchmark measures the *simulator itself*.  A
16x-replicated metadata-update wave over a whole-genome workload is run
under both engine schedules; the event scheduler must deliver at least
1.5x the host flits/sec of the dense loop on the memory-latency-bound
configuration, with bit-identical simulated cycle counts.  (The gate was
2x when waves were packed in input order; the host scheduler's
largest-first packing balances each wave, which removes the straggler
dead time the dense loop used to burn ticks on — the event engine is
just as fast, the dense oracle got a better-shaped workload, and the
steady-state advantage on balanced waves is ~1.7x.)  Host flits/sec
uses ``ParallelRunStats.wall_seconds`` — the engine-run host time the
schedules actually differ on (the per-partition SPM preload is the same
fixed setup work either way; its time is recorded separately).  The
wall-time numbers and ticks-skipped ratio land in the pytest-benchmark
JSON (``extra_info``) so the speedup trajectory is tracked across
commits.
"""

import time

from repro.accel.scheduler import run_metadata_parallel
from repro.eval.workloads import make_workload
from repro.hw.memory import MemoryConfig

#: High-latency memory: the regime where replicas spend most cycles
#: waiting on the shared channels and the wake set collapses to nothing,
#: letting the event engine fast-forward to the next response.
LATENCY_BOUND = MemoryConfig(latency_cycles=400)

N_PIPELINES = 16


def _workload():
    # 69 non-empty partitions -> 5 waves of up to 16 replicas.
    return make_workload(
        n_reads=320,
        read_length=80,
        genome_scale=4.5e-5,
        psize=2000,
        seed=2021,
    )


def _run(workload, mode, memory_config):
    start = time.perf_counter()
    results, stats = run_metadata_parallel(
        workload.partitions,
        workload.reference,
        n_pipelines=N_PIPELINES,
        memory_config=memory_config,
        mode=mode,
    )
    wall = time.perf_counter() - start
    return results, stats, wall


def test_sim_throughput_event_vs_dense(benchmark, report):
    workload = _workload()

    # Best-of-N on both sides so scheduler-noise outliers on the host
    # don't decide the comparison.
    dense_runs = [_run(workload, "dense", LATENCY_BOUND) for _ in range(2)]
    dense_results, dense_stats, dense_wall = min(
        dense_runs, key=lambda run: run[1].wall_seconds
    )

    event_runs = []

    def run_event():
        event_runs.append(_run(workload, "event", LATENCY_BOUND))

    benchmark.pedantic(run_event, rounds=3, iterations=1)
    event_results, event_stats, event_wall = min(
        event_runs, key=lambda run: run[1].wall_seconds
    )

    # Exact cycle accuracy: the schedules must agree on simulated time...
    assert event_stats.total_cycles == dense_stats.total_cycles
    assert event_stats.per_wave_cycles == dense_stats.per_wave_cycles
    # ...and on functional outputs.
    assert set(event_results) == set(dense_results)
    for pid, dense_res in dense_results.items():
        event_res = event_results[pid]
        assert event_res.nm == dense_res.nm
        assert event_res.md == dense_res.md
    assert event_stats.total_flits == dense_stats.total_flits

    dense_fps = dense_stats.host_flits_per_second
    event_fps = event_stats.host_flits_per_second
    speedup = event_fps / dense_fps
    assert speedup >= 1.5, (
        f"event scheduler only {speedup:.2f}x dense on the "
        "memory-latency-bound workload"
    )
    assert event_stats.skip_ratio > 0.5
    assert event_stats.fast_forward_cycles > 0

    benchmark.extra_info.update(
        dense_sim_seconds=round(dense_stats.wall_seconds, 4),
        event_sim_seconds=round(event_stats.wall_seconds, 4),
        dense_end_to_end_seconds=round(dense_wall, 4),
        event_end_to_end_seconds=round(event_wall, 4),
        dense_flits_per_second=round(dense_fps),
        event_flits_per_second=round(event_fps),
        host_speedup=round(speedup, 3),
        skip_ratio=round(event_stats.skip_ratio, 4),
        fast_forward_cycles=event_stats.fast_forward_cycles,
        simulated_cycles=event_stats.total_cycles,
    )

    report("Simulator throughput - event vs dense schedule (16 pipelines)", [
        f"dense: {dense_stats.wall_seconds:.2f}s simulating, "
        f"{dense_fps / 1e3:.1f}k flits/s",
        f"event: {event_stats.wall_seconds:.2f}s simulating, "
        f"{event_fps / 1e3:.1f}k flits/s "
        f"(skip ratio {event_stats.skip_ratio:.1%}, "
        f"{event_stats.fast_forward_cycles} cycles fast-forwarded)",
        f"host speedup {speedup:.2f}x at latency={LATENCY_BOUND.latency_cycles} "
        f"cycles; simulated cycles identical ({event_stats.total_cycles})",
    ])


def test_metrics_disabled_zero_overhead(benchmark, report):
    """The observability layer must be free when off.  With no probe
    attached the engine hot loops pay one ``is None`` check per cycle and
    nothing else, so two independent best-of-3 samples of the disabled
    path must agree within 5% — any systematic metrics tax would show up
    as a stable gap between them.  The enabled-profiling cost (probe
    attached, timelines + queue depths on) is recorded alongside for the
    trajectory; it is allowed to cost real time."""
    from repro.accel.markdup import run_quality_sums
    from repro.obs import Profiler

    quals = [read.qual for read in _workload().reads]

    def time_once(profiled):
        start = time.perf_counter()
        profiler = Profiler(name="overhead") if profiled else None
        result = run_quality_sums(quals, profiler=profiler)
        wall = time.perf_counter() - start
        return wall, result.stats.cycles

    # Warm up caches/allocators, then interleave the two disabled-path
    # samples — alternating which goes first — so drift and ordering
    # effects hit both equally.
    time_once(False)
    sample_a, sample_b = [], []
    for i in range(4):
        first, second = (sample_a, sample_b) if i % 2 == 0 else (sample_b, sample_a)
        first.append(time_once(False))
        second.append(time_once(False))
    base_wall, base_cycles = min(sample_a)
    check_wall, check_cycles = min(sample_b)
    assert base_cycles == check_cycles

    enabled_runs = []

    def run_enabled():
        enabled_runs.append(time_once(True))

    benchmark.pedantic(run_enabled, rounds=3, iterations=1)
    enabled_wall, enabled_cycles = min(enabled_runs)
    assert enabled_cycles == base_cycles  # profiling never perturbs timing

    ratio = check_wall / base_wall
    assert ratio <= 1.05, (
        f"disabled-metrics path regressed: {ratio:.3f}x between two "
        "samples of the same configuration"
    )
    enabled_ratio = enabled_wall / base_wall

    benchmark.extra_info.update(
        disabled_seconds=round(base_wall, 4),
        disabled_check_ratio=round(ratio, 4),
        enabled_seconds=round(enabled_wall, 4),
        enabled_overhead=round(enabled_ratio, 3),
        simulated_cycles=base_cycles,
    )
    report("Metrics overhead - disabled vs profiled run", [
        f"disabled: {base_wall:.3f}s (A/A ratio {ratio:.3f}x, gate 1.05x)",
        f"profiled: {enabled_wall:.3f}s ({enabled_ratio:.2f}x of disabled, "
        "timelines + queue depths on)",
    ])


def test_fault_hooks_no_fault_overhead(benchmark, report):
    """The resilience layer must be free when nothing faults.  With a
    fault injector attached whose plan never fires, ``run_partitioned``
    pays one parent-side ``poll`` per wave and nothing else — so an
    interleaved A/A comparison of hooked vs bare runs must agree within
    the same 5% noise budget as the metrics gate, with bit-identical
    simulated cycles."""
    from repro.accel.scheduler import MarkdupWaveDriver, run_partitioned
    from repro.faults import FaultInjector, FaultPlan, FaultSpec

    workload = _workload()
    # enough waves to amortize setup, few enough to keep the bench quick
    partitions = list(workload.partitions)[:16]

    #: A plan targeting a slot no schedule reaches: hooks armed, no hits.
    plan = FaultPlan(seed=0, specs=(
        FaultSpec("worker_crash", site="scheduler.wave", at=(10 ** 6,)),
    ))

    def time_once(hooked):
        injector = FaultInjector(plan) if hooked else None
        start = time.perf_counter()
        _, stats = run_partitioned(
            MarkdupWaveDriver(), partitions, 4, workers=1,
            fault_injector=injector,
        )
        wall = time.perf_counter() - start
        if injector is not None:
            assert not injector.injected
        return wall, stats.total_cycles

    time_once(False)  # warm-up
    time_once(True)
    bare, hooked = [], []
    for i in range(5):
        first, second = (bare, hooked) if i % 2 == 0 else (hooked, bare)
        first.append(time_once(first is hooked))
        second.append(time_once(second is hooked))

    def run_hooked():
        hooked.append(time_once(True))

    benchmark.pedantic(run_hooked, rounds=1, iterations=1)
    bare_wall, bare_cycles = min(bare)
    hooked_wall, hooked_cycles = min(hooked)
    assert hooked_cycles == bare_cycles  # hooks never perturb simulation

    ratio = hooked_wall / bare_wall
    assert ratio <= 1.05, (
        f"no-fault path costs {ratio:.3f}x with injection hooks armed"
    )

    benchmark.extra_info.update(
        bare_seconds=round(bare_wall, 4),
        hooked_seconds=round(hooked_wall, 4),
        hook_overhead=round(ratio, 4),
        simulated_cycles=bare_cycles,
    )
    report("Fault-hook overhead - armed injector, nothing firing", [
        f"bare: {bare_wall:.3f}s, hooked: {hooked_wall:.3f}s "
        f"(ratio {ratio:.3f}x, gate 1.05x, cycles identical)",
    ])


def test_sim_throughput_default_latency(report):
    """The same comparison at the default memory latency — a tougher
    regime for the event engine (fewer dead cycles to skip) recorded for
    the trajectory, without the 2x gate."""
    workload = _workload()
    _, dense_stats, dense_wall = _run(workload, "dense", None)
    event_results, event_stats, event_wall = _run(workload, "event", None)

    assert event_stats.total_cycles == dense_stats.total_cycles
    assert event_stats.total_flits == dense_stats.total_flits
    speedup = event_stats.host_flits_per_second / dense_stats.host_flits_per_second
    # Even with little latency to hide, skipping idle replicas must not
    # make the simulator slower.
    assert speedup >= 1.0

    report("Simulator throughput - default memory latency", [
        f"dense {dense_stats.wall_seconds:.2f}s vs event "
        f"{event_stats.wall_seconds:.2f}s simulating "
        f"(speedup {speedup:.2f}x, skip ratio {event_stats.skip_ratio:.1%})",
    ])
