"""Ablation: Figure 8 replication applied to the real metadata pipeline.

Unlike the synthetic Figure 8 bench (narrow memory, example pipeline),
this runs the actual Figure 11 metadata-update pipeline replicated N ways
inside one engine over real partitions, verifying bit-identical results
and measuring the wall-cycle reduction replication buys.
"""

from repro.accel.scheduler import run_metadata_parallel


def _sweep(workload):
    parts = [(pid, part) for pid, part in workload.partitions if part.num_rows > 0]
    out = {}
    baseline = None
    for n in (1, 2, 4):
        results, stats = run_metadata_parallel(parts, workload.reference, n)
        out[n] = stats.total_cycles
        if baseline is None:
            baseline = results
        else:
            for pid in baseline:
                assert results[pid].md == baseline[pid].md, str(pid)
    return out, len(parts)


def test_ablation_real_pipeline_replication(benchmark, report, bench_workload):
    cycles, n_parts = benchmark(_sweep, bench_workload)

    assert cycles[2] < cycles[1]
    assert cycles[4] <= cycles[2]
    speedup2 = cycles[1] / cycles[2]
    speedup4 = cycles[1] / cycles[4]
    assert speedup2 > 1.4

    report("Ablation - real Figure 11 pipeline replicated (Figure 8)", [
        f"{n_parts} partitions processed; results identical at every width",
        f"1 pipeline: {cycles[1]} cycles",
        f"2 pipelines: {cycles[2]} cycles ({speedup2:.2f}x)",
        f"4 pipelines: {cycles[4]} cycles ({speedup4:.2f}x)",
        "wall-cycles track the longest partition per wave, the behaviour "
        "the paper's 16x replication exploits",
    ])
