"""Host scheduler throughput: multi-core wave fan-out.

Not a paper figure — this benchmark measures the *host scheduler*.  A
32-partition metadata-update workload is run through
:func:`run_partitioned` once serially (``workers=1``) and once fanned
out over a 4-process pool (``workers=4``); with one pipeline per wave
every partition is its own wave, so the pool is the only source of
host-side concurrency.  The fanned-out run must finish the batch in at
most half the serial host wall-clock (gated only where >= 4 cores
exist), while staying bit-identical in simulated cycles and outputs.
A second pass over the same partitions through a shared
:class:`SpmImageCache` must replay every reference image (>= 1 hit per
re-used partition, zero misses) — that part runs on any machine.
"""

import os

import pytest

from repro.accel.scheduler import (
    MetadataWaveDriver,
    SpmImageCache,
    run_partitioned,
)
from repro.eval.workloads import make_workload

N_PARTITIONS = 32
WORKERS = 4
SPEEDUP_GATE = 2.0


def _scheduler_workload():
    # 69 non-empty partitions at this scale; keep the first 32 by input
    # order so the benchmark workload is exactly the issue's shape.
    workload = make_workload(
        n_reads=320,
        read_length=80,
        genome_scale=4.5e-5,
        psize=2000,
        seed=2021,
    )
    parts = [(pid, part) for pid, part in workload.partitions if part.num_rows]
    assert len(parts) >= N_PARTITIONS
    return workload, parts[:N_PARTITIONS]


def _assert_identical(serial_res, serial_stats, other_res, other_stats):
    assert other_stats.total_cycles == serial_stats.total_cycles
    assert other_stats.per_wave_cycles == serial_stats.per_wave_cycles
    assert other_stats.spm_load_cycles == serial_stats.spm_load_cycles
    assert other_stats.total_flits == serial_stats.total_flits
    assert set(other_res) == set(serial_res)
    for pid, serial in serial_res.items():
        assert other_res[pid].nm == serial.nm, str(pid)
        assert other_res[pid].md == serial.md, str(pid)
        assert other_res[pid].uq == serial.uq, str(pid)


def test_spm_cache_replays_reused_partitions(report):
    """Acceptance: a re-run over the same partitions through a shared
    cache shows >= 1 hit per re-used partition and zero misses."""
    workload, parts = _scheduler_workload()
    driver = MetadataWaveDriver(reference=workload.reference)
    cache = SpmImageCache()
    cold_res, cold = run_partitioned(driver, parts, 4, spm_cache=cache)
    warm_res, warm = run_partitioned(driver, parts, 4, spm_cache=cache)

    assert cold.spm_cache_misses == N_PARTITIONS
    assert warm.spm_cache_misses == 0
    assert warm.spm_cache_hits >= N_PARTITIONS
    assert warm.spm_cycles_saved > 0
    _assert_identical(cold_res, cold, warm_res, warm)

    report("Host scheduler - SPM image cache (32 partitions)", [
        f"cold: {cold.spm_cache_misses} misses, "
        f"{cold.spm_load_cycles} load cycles simulated",
        f"warm: {warm.spm_cache_hits} hits / {warm.spm_cache_misses} misses, "
        f"{warm.spm_cycles_saved} simulated load cycles replayed from cache",
    ])


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"speedup gate needs >= {WORKERS} cores",
)
def test_worker_fanout_speedup(benchmark, report):
    workload, parts = _scheduler_workload()
    driver = MetadataWaveDriver(reference=workload.reference)

    # Best-of-N on both sides so host scheduler-noise outliers don't
    # decide the comparison.  Fresh private caches in both runs: SPM
    # loading is part of the work being fanned out.
    serial_runs = [
        run_partitioned(driver, parts, 1, workers=1) for _ in range(2)
    ]
    serial_res, serial_stats = min(
        serial_runs, key=lambda run: run[1].elapsed_seconds
    )

    pool_runs = []

    def run_pool():
        pool_runs.append(run_partitioned(driver, parts, 1, workers=WORKERS))

    benchmark.pedantic(run_pool, rounds=3, iterations=1)
    pool_res, pool_stats = min(pool_runs, key=lambda run: run[1].elapsed_seconds)

    assert serial_stats.waves == N_PARTITIONS
    assert pool_stats.workers == WORKERS
    _assert_identical(serial_res, serial_stats, pool_res, pool_stats)

    speedup = serial_stats.elapsed_seconds / pool_stats.elapsed_seconds
    assert speedup >= SPEEDUP_GATE, (
        f"workers={WORKERS} only {speedup:.2f}x the serial scheduler "
        f"on the {N_PARTITIONS}-partition metadata workload"
    )

    benchmark.extra_info.update(
        serial_seconds=round(serial_stats.elapsed_seconds, 4),
        pool_seconds=round(pool_stats.elapsed_seconds, 4),
        host_speedup=round(speedup, 3),
        host_parallelism=round(pool_stats.host_parallelism, 3),
        simulated_cycles=pool_stats.total_cycles,
        waves=pool_stats.waves,
    )

    report(f"Host scheduler - wave fan-out ({N_PARTITIONS} partitions)", [
        f"workers=1: {serial_stats.elapsed_seconds:.2f}s host wall-clock",
        f"workers={WORKERS}: {pool_stats.elapsed_seconds:.2f}s "
        f"(speedup {speedup:.2f}x, parallelism "
        f"{pool_stats.host_parallelism:.2f}x); "
        f"simulated cycles identical ({pool_stats.total_cycles})",
    ])
