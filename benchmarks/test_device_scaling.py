"""Multi-device scale-out: sharded wave queues over a DevicePool.

Not a paper figure — this benchmark measures the *host-side* scale-out
tier the paper's Fig. 8/9 scaling analysis motivates.  A 32-partition
metadata-update workload is sharded over ``devices=4`` queues (one
process-pool worker each) and must finish in at most ~half the
``devices=1`` host wall-clock (gated only where >= 4 cores exist),
while staying bit-identical in simulated cycles and outputs.  The
determinism, steal, and load-balance assertions run on any machine.
"""

import os

import pytest

from repro.accel.scheduler import MetadataWaveDriver, run_partitioned
from repro.accel.sharding import plan_shards, run_sharded
from repro.eval.workloads import make_workload

N_PARTITIONS = 32
DEVICES = 4
SPEEDUP_GATE = 1.8


def _scaling_workload():
    workload = make_workload(
        n_reads=320,
        read_length=80,
        genome_scale=4.5e-5,
        psize=2000,
        seed=2021,
    )
    parts = [(pid, part) for pid, part in workload.partitions if part.num_rows]
    assert len(parts) >= N_PARTITIONS
    return workload, parts[:N_PARTITIONS]


def _assert_identical(serial_res, serial_stats, sharded_res, sharded_stats):
    assert sharded_stats.total_cycles == serial_stats.total_cycles
    assert sharded_stats.per_wave_cycles == serial_stats.per_wave_cycles
    assert sharded_stats.spm_load_cycles == serial_stats.spm_load_cycles
    assert sharded_stats.total_flits == serial_stats.total_flits
    assert set(sharded_res) == set(serial_res)
    for pid, serial in serial_res.items():
        assert sharded_res[pid].nm == serial.nm, str(pid)
        assert sharded_res[pid].md == serial.md, str(pid)
        assert sharded_res[pid].uq == serial.uq, str(pid)


def test_sharded_determinism_and_balance(report):
    """Acceptance (any machine): devices=4 is bit-identical to serial,
    and the post-steal plan is balanced — no queue holds more than half
    the total estimated work once four queues share it."""
    workload, parts = _scaling_workload()
    driver = MetadataWaveDriver(reference=workload.reference)
    serial_res, serial_stats = run_partitioned(driver, parts, 1, workers=1)
    sharded_res, sharded_stats = run_sharded(
        driver, parts, 1, devices=DEVICES, workers=1
    )
    _assert_identical(serial_res, serial_stats, sharded_res, sharded_stats)

    plan = plan_shards(parts, 1, devices=DEVICES)
    loads = plan.loads()
    assert max(loads) <= sum(loads) / 2, (
        f"straggler queue after stealing: loads {loads}"
    )
    # the range policy front-loads the LPT order, so it must steal
    range_plan = plan_shards(parts, 1, devices=DEVICES, policy="range")
    assert range_plan.steals

    report(f"Multi-device sharding - determinism ({N_PARTITIONS} partitions)", [
        f"devices={DEVICES}: results and {sharded_stats.total_cycles} "
        f"simulated cycles identical to serial",
        f"plan loads {loads} ({len(plan.steals)} steal(s) hash policy, "
        f"{len(range_plan.steals)} steal(s) range policy)",
    ])


@pytest.mark.skipif(
    (os.cpu_count() or 1) < DEVICES,
    reason=f"speedup gate needs >= {DEVICES} cores",
)
def test_device_fanout_speedup(benchmark, report):
    workload, parts = _scaling_workload()
    driver = MetadataWaveDriver(reference=workload.reference)

    # Best-of-N on both sides so host scheduler-noise outliers don't
    # decide the comparison; same workers on both sides so the only
    # variable is the device count.
    serial_runs = [
        run_sharded(driver, parts, 1, devices=1, workers=1) for _ in range(2)
    ]
    serial_res, serial_stats = min(
        serial_runs, key=lambda run: run[1].elapsed_seconds
    )

    sharded_runs = []

    def run_devices():
        sharded_runs.append(
            run_sharded(driver, parts, 1, devices=DEVICES, workers=1)
        )

    benchmark.pedantic(run_devices, rounds=3, iterations=1)
    sharded_res, sharded_stats = min(
        sharded_runs, key=lambda run: run[1].elapsed_seconds
    )

    assert sharded_stats.devices == DEVICES
    _assert_identical(serial_res, serial_stats, sharded_res, sharded_stats)

    speedup = serial_stats.elapsed_seconds / sharded_stats.elapsed_seconds
    assert speedup >= SPEEDUP_GATE, (
        f"devices={DEVICES} only {speedup:.2f}x the single-device run "
        f"on the {N_PARTITIONS}-partition metadata workload"
    )

    benchmark.extra_info.update(
        serial_seconds=round(serial_stats.elapsed_seconds, 4),
        sharded_seconds=round(sharded_stats.elapsed_seconds, 4),
        host_speedup=round(speedup, 3),
        host_parallelism=round(sharded_stats.host_parallelism, 3),
        steals=sharded_stats.steal_count,
        simulated_cycles=sharded_stats.total_cycles,
        waves=sharded_stats.waves,
    )

    report(f"Multi-device sharding - scale-out ({N_PARTITIONS} partitions)", [
        f"devices=1: {serial_stats.elapsed_seconds:.2f}s host wall-clock",
        f"devices={DEVICES}: {sharded_stats.elapsed_seconds:.2f}s "
        f"(speedup {speedup:.2f}x, parallelism "
        f"{sharded_stats.host_parallelism:.2f}x, "
        f"{sharded_stats.steal_count} steal(s)); "
        f"simulated cycles identical ({sharded_stats.total_cycles})",
    ])
