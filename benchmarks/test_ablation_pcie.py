"""Ablation: host-FPGA interconnect bandwidth sweep (Section V-B).

The paper singles out the 7 GB/s PCIe DMA as the limiter of metadata
update and BQSR and projects PCIe 4.0 numbers.  This ablation sweeps the
link bandwidth and locates where each stage stops being communication
bound.
"""

from repro.perf.cpu_model import PAPER_READS
from repro.perf.timing import model_stage

BANDWIDTHS = (2e9, 7e9, 16e9, 32e9, 64e9)


def _sweep():
    out = {}
    for stage in ("metadata", "bqsr_table"):
        out[stage] = {
            bw: model_stage(stage, PAPER_READS, 151, pcie_bandwidth=bw)
            for bw in BANDWIDTHS
        }
    return out


def test_ablation_pcie_bandwidth(benchmark, report):
    sweep = benchmark(_sweep)

    lines = []
    for stage, by_bw in sweep.items():
        speedups = {bw: t.speedup for bw, t in by_bw.items()}
        # More bandwidth never hurts; gains diminish once host/hw dominate.
        ordered = [speedups[bw] for bw in BANDWIDTHS]
        assert ordered == sorted(ordered)
        gain_low = speedups[7e9] / speedups[2e9]
        gain_high = speedups[64e9] / speedups[32e9]
        assert gain_low > gain_high  # diminishing returns
        series = ", ".join(
            f"{bw / 1e9:.0f}GB/s={speedup:.1f}x"
            for bw, speedup in speedups.items()
        )
        lines.append(f"{stage}: {series}")
    lines.append("paper checkpoints: metadata 19.25x @7GB/s -> ~33x @32GB/s; "
                 "bqsr 12.59x -> ~16.4x")
    report("Ablation - PCIe bandwidth sweep", lines)
