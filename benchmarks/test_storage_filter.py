"""In-storage filtering: transfer-time reduction on a dense workload.

Not a paper figure — this benchmark gates the GenStore-style storage
tier of DESIGN.md §3.10.  On a read-dense two-chromosome workload the
in-SSD exact-match filter must (a) prune at least half the reads (the
GenStore premise: most reads match the reference exactly under typical
error rates), (b) cut the modelled PCIe transfer time by >= 1.4x on a
sharded run, and (c) change *nothing else* — results and simulated
kernel cycles stay bit-identical, and the in-SSD scan stays cheap
relative to the transfer time it saves.

Reproduce: ``PYTHONPATH=src python -m pytest \
benchmarks/test_storage_filter.py --benchmark-only`` (see
EXPERIMENTS.md "In-storage filtering sweep").
"""

from repro.accel.scheduler import MetadataWaveDriver
from repro.accel.sharding import run_sharded
from repro.eval.workloads import make_workload
from repro.storage import plan_storage_filter

DEVICES = 2
FRACTION_GATE = 0.5
SPEEDUP_GATE = 1.4


def _dense_workload():
    """Enough reads per partition that payload dwarfs per-wave setup."""
    return make_workload(
        n_reads=1500,
        read_length=100,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=4000,
        seed=11,
    )


def test_storage_filter_transfer_reduction(report):
    workload = _dense_workload()
    plan = plan_storage_filter(
        workload.partitions, workload.reference, record=False
    )
    assert plan.filtered_fraction >= FRACTION_GATE, (
        f"only {plan.filtered_fraction:.1%} of reads pruned — the "
        "GenStore premise needs a mostly-exact-matching workload"
    )
    assert plan.compression_ratio > 1.5

    driver = MetadataWaveDriver(reference=workload.reference)
    baseline_res, baseline = run_sharded(
        driver, workload.partitions, 2, devices=DEVICES
    )
    filtered_res, filtered = run_sharded(
        driver, workload.partitions, 2, devices=DEVICES, storage=plan
    )

    # Bit-identity: the filter may only touch the transfer path.
    assert filtered.per_wave_cycles == baseline.per_wave_cycles
    assert filtered.total_cycles == baseline.total_cycles
    assert filtered.spm_load_cycles == baseline.spm_load_cycles
    assert set(filtered_res) == set(baseline_res)
    for pid, want in baseline_res.items():
        assert filtered_res[pid].nm == want.nm, str(pid)
        assert filtered_res[pid].md == want.md, str(pid)
        assert filtered_res[pid].uq == want.uq, str(pid)

    baseline_transfer = sum(baseline.device_transfer_seconds)
    filtered_transfer = sum(filtered.device_transfer_seconds)
    speedup = baseline_transfer / max(filtered_transfer, 1e-12)
    assert speedup >= SPEEDUP_GATE, (
        f"transfer speedup only {speedup:.2f}x at filtered fraction "
        f"{plan.filtered_fraction:.1%}"
    )
    # The in-SSD scan must not eat what it saves.
    assert plan.scan_seconds < baseline_transfer - filtered_transfer

    report("In-storage filtering - transfer reduction (DESIGN.md §3.10)", [
        f"reads pruned in-SSD: {plan.pruned_rows}/{plan.rows} "
        f"({plan.filtered_fraction:.1%}), chunk compression "
        f"{plan.compression_ratio:.2f}x",
        f"PCIe H2D: {plan.raw_nbytes} B raw -> {plan.survivor_nbytes} B "
        f"survivors",
        f"transfer time devices={DEVICES}: {baseline_transfer * 1e3:.3f} ms "
        f"-> {filtered_transfer * 1e3:.3f} ms ({speedup:.2f}x); in-SSD "
        f"scan {plan.scan_seconds * 1e3:.3f} ms; kernel cycles identical "
        f"({filtered.total_cycles})",
    ])
