"""Table III: cost comparison of Genesis and the software baseline."""

import pytest

from repro.eval.experiments import PAPER_TARGETS, measure_cycles_per_base, table3
from repro.perf.cpu_model import PAPER_READS
from repro.perf.timing import model_stage


def _table3(workload):
    timings = {}
    for stage in ("markdup", "metadata", "bqsr_table"):
        cpb = measure_cycles_per_base(stage, workload).cycles_per_base
        timings[stage] = model_stage(stage, PAPER_READS, 151, cpb)
    return table3(timings)


def test_table3_cost_comparison(benchmark, report, small_bench_workload):
    rows = benchmark(_table3, small_bench_workload)

    lines = []
    for stage in ("markdup", "metadata", "bqsr_table"):
        row = rows[stage]
        paper_cost = PAPER_TARGETS["cost_reduction"][stage]
        paper_ppd = PAPER_TARGETS["performance_per_dollar"][stage]
        lines.append(
            f"{stage}: cost reduction {row['cost_reduction']:.2f}x "
            f"(paper {paper_cost}x), perf/$ {row['performance_per_dollar']:.1f}x "
            f"(paper {paper_ppd}x)"
        )
    # Shape for the two stages whose published numbers include the price
    # ratio (the published mark-duplicates row omits it; see EXPERIMENTS.md).
    assert rows["metadata"]["cost_reduction"] == pytest.approx(15.05, rel=0.4)
    assert rows["bqsr_table"]["cost_reduction"] == pytest.approx(9.84, rel=0.4)
    assert rows["metadata"]["performance_per_dollar"] == pytest.approx(
        289.59, rel=0.6
    )
    # Ordering always holds.
    assert (rows["metadata"]["cost_reduction"]
            > rows["bqsr_table"]["cost_reduction"]
            > rows["markdup"]["cost_reduction"])

    lines.append("note: the published markdup cost reduction (2.08x) equals "
                 "its speedup, i.e. omits the $1.29/$1.65 price ratio")
    report("Table III - cost comparison (f1.2xlarge vs r5.4xlarge)", lines)
