"""Ablation: host/accelerator overlap through the non-blocking API.

Section III-E: "the existence of these non-blocking calls is to allow the
host CPU to perform useful work while the accelerator is running."  This
bench quantifies that: a batch of per-partition jobs (accelerator compute
plus host post-processing) scheduled blocking vs. software-pipelined over
the virtual timeline.
"""

from repro.runtime.batch import BatchJob, compare_schedules
from repro.runtime.device import CLOCK_HZ


def _run():
    accel_seconds = 400_000 / CLOCK_HZ  # 1.6 ms of compute per partition
    jobs = [
        BatchJob(
            name=f"partition{i}",
            input_bytes=2_000_000,
            cycles=400_000,
            host_seconds=accel_seconds * 0.8,  # host tag-attachment work
            output_bytes=100_000,
        )
        for i in range(12)
    ]
    return compare_schedules(jobs)


def test_ablation_host_accelerator_overlap(benchmark, report):
    comparison = benchmark(_run)

    speedup = comparison["overlap_speedup"]
    assert speedup > 1.2
    assert comparison["pipelined_seconds"] < comparison["serial_seconds"]

    report("Ablation - non-blocking API overlap (Section III-E)", [
        f"blocking schedule:  {comparison['serial_seconds'] * 1e3:.2f} ms",
        f"pipelined schedule: {comparison['pipelined_seconds'] * 1e3:.2f} ms",
        f"overlap speedup: {speedup:.2f}x — host work hidden behind "
        "run_genesis/check_genesis",
    ])
