"""Extension bench (Section IV-E): FM-index seeding for BWA-MEM.

The seeding pipeline holds the rank table in an SPM and runs the greedy
maximal-exact-match search at one backward-extension step per cycle.
"""

import numpy as np

from repro.accel.fm_seeding import run_fm_seeding
from repro.fmindex import FmIndex, find_seeds, seed_coverage
from repro.genomics.sequences import random_sequence


def _run():
    rng = np.random.default_rng(404)
    ref = random_sequence(4000, rng)
    index = FmIndex(ref)
    reads = []
    for _ in range(25):
        start = int(rng.integers(0, len(ref) - 80))
        read = ref[start:start + 80].copy()
        errors = rng.random(80) < 0.01
        read[errors] = (read[errors] + 1) % 4
        reads.append(read)
    hw = run_fm_seeding(index, reads, min_seed_length=19)
    sw = [find_seeds(index, read, min_seed_length=19) for read in reads]
    return index, reads, hw, sw


def test_ext_fm_seeding(benchmark, report):
    index, reads, hw, sw = benchmark(_run)

    for hw_seeds, sw_seeds in zip(hw.seeds, sw):
        assert [(s.read_start, s.length) for s in hw_seeds] == \
            [(s.read_start, s.length) for s in sw_seeds]
    total_bases = sum(len(read) for read in reads)
    coverage = np.mean([
        seed_coverage(seeds, len(read)) for seeds, read in zip(sw, reads)
    ])
    assert coverage > 0.8  # ~1% error rate leaves long exact stretches
    cycles_per_base = hw.stats.cycles / total_bases
    assert cycles_per_base < 4.0  # load + extend per base, small overheads

    report("Extension (IV-E) - FM-index seeding (BWA-MEM kernel)", [
        f"{len(reads)} reads against a {index.length - 1} bp index; "
        "HW seeds == SW seeds",
        f"mean seeds/read: {np.mean([len(s) for s in sw]):.1f}, "
        f"read coverage by seeds: {coverage:.0%}",
        f"throughput: {cycles_per_base:.2f} cycles/base "
        "(one backward-extension step per cycle, Occ table in SPM)",
    ])
