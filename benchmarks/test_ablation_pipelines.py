"""Ablation: pipeline replication count (Section V-A's configuration rule).

The paper picks 16/16/8 pipelines — "the resource limit we can fit" or
"the performance limit where an accelerator can no longer get more speedup
from parallelism".  This ablation sweeps the count in the timing model and
shows the knee: once a stage is PCIe- or host-bound, more pipelines stop
paying.
"""

from repro.perf.cpu_model import PAPER_READS
from repro.perf.timing import CALIBRATIONS, model_stage, with_pipelines

COUNTS = (1, 2, 4, 8, 16, 32, 64)


def _sweep():
    out = {}
    for stage, calibration in CALIBRATIONS.items():
        out[stage] = {
            n: model_stage(
                stage, PAPER_READS, 151,
                calibration=with_pipelines(calibration, n),
            ).speedup
            for n in COUNTS
        }
    return out


def test_ablation_pipeline_count(benchmark, report):
    sweep = benchmark(_sweep)

    lines = []
    for stage, by_n in sweep.items():
        ordered = [by_n[n] for n in COUNTS]
        assert ordered == sorted(ordered)  # monotone
        # Diminishing returns around the paper's operating point: the gain
        # from doubling beyond it never exceeds the gain of reaching it.
        paper_n = CALIBRATIONS[stage].n_pipelines
        gain_beyond = by_n[paper_n * 2] / by_n[paper_n]
        gain_reaching = by_n[paper_n] / by_n[paper_n // 2]
        assert gain_beyond <= gain_reaching * 1.02, stage
        # Far past the knee the curve is flat: 32->64 gains <10%.
        assert by_n[64] / by_n[32] < 1.10, stage
        # But halving it costs something real for the compute-heavy stages.
        if stage != "markdup":
            assert gain_reaching > 1.05, stage
        series = ", ".join(f"{n}x={by_n[n]:.1f}" for n in COUNTS)
        lines.append(f"{stage} (paper uses {paper_n} pipelines): {series}")
    report("Ablation - speedup vs number of replicated pipelines", lines)
