"""Table IV: FPGA resource usage of the Genesis accelerators.

Module censuses come from the actually-built pipelines; capacities and
pipeline counts are the paper's (16x/16x/8x, 1 Mbp partitions); per-module
costs are the calibrated additive model (see EXPERIMENTS.md).
"""

from repro.eval.experiments import PAPER_TARGETS, table4_estimates
from repro.hw.resources import VU9P_BRAM_BYTES, VU9P_LUTS, VU9P_REGISTERS


def test_table4_resource_usage(benchmark, report):
    estimates = benchmark(table4_estimates)

    lines = []
    for name, vector in estimates.items():
        paper_luts, paper_regs, paper_bram = PAPER_TARGETS["resources"][name]
        utilization = vector.utilization()
        lines.append(
            f"{name}: {vector.luts / 1000:.0f}K LUTs (paper {paper_luts / 1000:.0f}K), "
            f"{vector.registers / 1000:.0f}K FFs (paper {paper_regs / 1000:.0f}K), "
            f"{vector.bram_bytes / 1048576:.2f}MB BRAM (paper {paper_bram}MB) "
            f"- {utilization['luts']:.0%} LUT util"
        )
        # Everything fits the VU9P, as the paper's designs do.
        assert vector.luts < VU9P_LUTS
        assert vector.registers < VU9P_REGISTERS
        assert vector.bram_bytes < VU9P_BRAM_BYTES
        # Within 2x of published (the model's stated accuracy target).
        assert 0.5 < vector.luts / paper_luts < 2.0
        assert 0.5 < (vector.bram_bytes / 1048576) / paper_bram < 2.0

    # Ordering shape: BQSR is LUT-heaviest, metadata is BRAM-heaviest.
    assert estimates["bqsr_table"].luts > estimates["metadata"].luts > \
        estimates["markdup"].luts
    assert estimates["metadata"].bram_bytes == max(
        v.bram_bytes for v in estimates.values()
    )
    lines.append("ordering matches the paper: BQSR most LUTs; "
                 "metadata most BRAM; markdup smallest")
    report("Table IV - FPGA resource usage (VU9P)", lines)
