"""Figure 1: the cost of sequencing a human genome, 2001-2019.

Background figure; the series is the NHGRI survey the paper replicates.
The benchmark regenerates the series and checks its defining shape: a
hundred-thousand-fold drop that outpaces Moore's law after 2007.
"""

import math

from repro.eval.experiments import figure1_sequencing_cost


def test_figure1_sequencing_cost(benchmark, report):
    data = benchmark(figure1_sequencing_cost)

    years = [year for year, _ in data]
    costs = [cost for _, cost in data]
    # "has dropped by a hundred thousand fold, from 2001 to 2019".
    assert costs[0] / costs[-1] > 1e4
    # Moore's law halves every ~2 years; sequencing cost fell much faster
    # over 2007-2011 (the NGS transition).
    moore = 2 ** ((2011 - 2007) / 2)
    actual = costs[years.index(2007)] / costs[years.index(2011)]
    assert actual > moore * 10

    lines = [f"{year}: ${cost:,.0f}" for year, cost in data]
    lines.append(
        f"total drop: {costs[0] / costs[-1]:,.0f}x (paper: ~100,000x)"
    )
    report("Figure 1 - cost per genome (NHGRI survey)", lines)
