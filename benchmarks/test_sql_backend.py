"""The vectorized SQL backend's speedup gate.

The multi-backend engine only earns its keep if the ``fast`` backend
beats the row-at-a-time reference by an order of magnitude on the
figure-scale stage scripts.  This gate measures **backend execution
time only** (the ``sql_operator_seconds`` counters, via
:func:`repro.obs.bench.sql_stage_backend_seconds`) so host-side prep
common to both backends does not dilute the ratio, takes the median of
three runs per backend, and requires ≥10x on every stage.

The second test runs the ``sql_backend_speedup`` probe through the
``repro bench`` harness itself — ledger event included — pinning that
the speedup is recorded the same way CI's bench-smoke job records it.
"""

from __future__ import annotations

import statistics

import pytest

from repro.eval.workloads import make_workload
from repro.obs import (
    BenchContext,
    RunLedger,
    record_event,
    run_bench,
    run_context,
    write_bench_result,
)
from repro.obs.bench import sql_stage_backend_seconds
from repro.obs.ledger import RunManifest

#: The gate: vectorized backend execution must be at least this much
#: faster than the reference interpreter, per stage.
MIN_SPEEDUP = 10.0

STAGES = ("markdup", "metadata", "bqsr")


@pytest.fixture(scope="module")
def gate_workload():
    """Figure-scale inputs: enough reads and partition width that the
    vectorized kernels run in their intended regime."""
    return make_workload(
        n_reads=400,
        read_length=100,
        chromosomes=(20,),
        genome_scale=4.5e-5,
        psize=8000,
        seed=5,
    )


def _median_stage_seconds(workload, backend: str, repeats: int = 3):
    samples = [
        sql_stage_backend_seconds(workload, backend) for _ in range(repeats)
    ]
    return {
        stage: statistics.median(sample[stage] for sample in samples)
        for stage in STAGES
    }


def test_fast_backend_10x_gate(gate_workload, report):
    """Median backend-execution speedup ≥10x on every stage script."""
    reference = _median_stage_seconds(gate_workload, "reference")
    fast = _median_stage_seconds(gate_workload, "fast")
    speedups = {
        stage: reference[stage] / max(fast[stage], 1e-9) for stage in STAGES
    }
    report(
        "SQL backend speedup (fast vs reference, backend execution only)",
        [
            f"{stage:<10} {reference[stage]:>8.4f}s -> {fast[stage]:>8.4f}s"
            f"  ({speedups[stage]:.1f}x)"
            for stage in STAGES
        ],
    )
    for stage, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, (
            f"{stage}: fast backend only {speedup:.1f}x vs reference "
            f"(gate {MIN_SPEEDUP}x); reference {reference[stage]:.4f}s, "
            f"fast {fast[stage]:.4f}s"
        )


def test_speedup_recorded_through_bench_ledger(tmp_path):
    """The probe lands in a BENCH file with the backend in the manifest
    config, and the ledger carries the ``bench.sql_backend`` event —
    the same record CI's bench-smoke job produces."""
    context = BenchContext(
        reads=60, read_length=60, psize=2000, seed=77, sql_backend="fast"
    )
    ledger_path = tmp_path / "ledger.jsonl"
    manifest = RunManifest(workload="bench", config=context.config())
    with run_context(manifest, RunLedger(str(ledger_path))):
        result = run_bench(
            context, repeats=1, warmup=0, probes=["sql_backend_speedup"]
        )
        probe = result.probes["sql_backend_speedup"]
        record_event(
            "bench.sql_backend", backend=context.sql_backend,
            speedup=probe.median,
        )
        path = write_bench_result(result, str(tmp_path))

    assert probe.median > 1.0
    saved = result.load(path)
    assert saved.manifest.config["sql_backend"] == "fast"
    assert "sql_backend_speedup" in saved.probes
    ledger_text = ledger_path.read_text()
    assert "bench.sql_backend" in ledger_text
    assert '"backend": "fast"' in ledger_text
