"""Extension bench: the full secondary-analysis flow, end to end.

Preprocessing (with the Genesis accelerators) feeding variant discovery:
reads simulated from a donor genome carrying injected SNVs are
preprocessed — duplicates marked by the Figure 10 accelerator — then
piled up and genotyped; the calls are scored against the injected truth
and intersected with it via the hardware callset-join (the VQSR
operation of Section IV-E).
"""

from repro.accel.callset_ops import run_callset_intersection
from repro.accel.markdup import accelerated_mark_duplicates
from repro.genomics import ReadSimulator, ReferenceGenome, SimulatorConfig
from repro.variants import call_variants, inject_true_variants


def _run():
    reference = ReferenceGenome.random({1: 12000}, snp_rate=0.0, seed=88)
    donor, truth = inject_true_variants(reference, rate=2e-3, seed=89)
    config = SimulatorConfig(
        seed=90, read_length=80, substitution_rate=0.002,
        insertion_rate=0.0, deletion_rate=0.0, soft_clip_rate=0.02,
        duplicate_rate=0.25,
    )
    reads = ReadSimulator(donor, config).simulate(3200)
    markdup = accelerated_mark_duplicates(reads)
    calls = call_variants(markdup.sorted_reads, reference)
    metrics = calls.concordance(truth.snvs())
    confirmed = run_callset_intersection(calls, truth)
    return markdup, truth, calls, metrics, confirmed


def test_ext_variant_discovery(benchmark, report):
    markdup, truth, calls, metrics, confirmed = benchmark(_run)

    assert markdup.num_duplicates > 0
    assert metrics["precision"] > 0.75
    assert metrics["recall"] > 0.4
    true_positives = len(calls.keys() & truth.snvs().keys())
    assert len(confirmed.callset) == true_positives

    report("Extension - end-to-end secondary analysis", [
        f"duplicates flagged by the Figure 10 accelerator: "
        f"{markdup.num_duplicates}",
        f"variants called: {len(calls)} of {len(truth)} injected "
        f"(precision {metrics['precision']:.2f}, recall "
        f"{metrics['recall']:.2f}, F1 {metrics['f1']:.2f})",
        f"hardware callset intersection confirmed {len(confirmed.callset)} "
        "true positives (the VQSR join of Section IV-E)",
    ])
