"""Soak/load benchmark for the multi-tenant job service.

Hundreds of simulated tenants push a seeded mixed-stage arrival trace
(markdup / metadata / bqsr) through :class:`~repro.serve.JobService`,
and the gate asserts the serving SLOs from the *ledger* — the same
per-tenant p50/p99 report an operator would reconstruct after the
fact:

* zero dropped-but-admitted jobs (everything admitted completes);
* fleet-wide and per-tenant p99 latency under the SLO bound.

Latency is virtual cycles on the service clock, so the gate is exact
and deterministic — no warmup, no variance, no flaky CI.  The
``smoke`` variant runs a small topology for the CI bench-smoke job.
"""

from __future__ import annotations

import pytest

from repro.eval.workloads import make_workload
from repro.obs.ledger import RunLedger, RunManifest, run_context
from repro.serve import ArrivalTrace, JobService, ServiceReport, trace_jobs

#: Fleet p99 SLO, in virtual cycles.  The soak topology's deterministic
#: p99 sits well under this; a scheduler regression that doubles
#: queueing delay blows through it.
SOAK_P99_SLO_CYCLES = 2_000_000
SMOKE_P99_SLO_CYCLES = 1_000_000


@pytest.fixture(scope="module")
def workload():
    return make_workload(
        n_reads=60,
        read_length=50,
        chromosomes=(20, 21),
        genome_scale=4.5e-5,
        psize=800,
        seed=105,
    )


def _soak(workload, tmp_path, *, tenants, jobs, devices, mean_gap, seed,
          quota=4, backlog=256):
    ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
    manifest = RunManifest(
        workload="serve-soak",
        config={"tenants": tenants, "jobs": jobs, "devices": devices},
        seed=seed,
    )
    trace = ArrivalTrace.generate(
        tenants=tenants,
        jobs=jobs,
        seed=seed,
        mean_gap_cycles=mean_gap,
        max_partitions=2,
    )
    with run_context(manifest, ledger):
        service = JobService(
            devices=devices, workers=1, quota=quota, max_backlog=backlog
        )
        for at_cycles, spec in trace_jobs(trace, workload, n_pipelines=2):
            service.schedule(spec, at_cycles=at_cycles)
        summary = service.run_until_idle()
    report = ServiceReport.from_ledger(ledger, run_id=manifest.run_id)
    return summary, report


def _assert_slo(summary, report, p99_slo):
    # nothing admitted may be dropped: the ledger's completion count
    # accounts for every admission
    assert report.dropped_admitted == 0
    assert report.failed == 0
    assert report.admitted == summary.jobs_admitted
    assert report.completed == summary.jobs_completed
    fleet_p99 = report.p99_latency_cycles()
    assert fleet_p99 is not None
    assert fleet_p99 <= p99_slo, (
        f"fleet p99 {fleet_p99} cycles blows the {p99_slo}-cycle SLO"
    )
    for tenant, tenant_report in report.tenants.items():
        if not tenant_report.latencies:
            continue
        assert tenant_report.p50_latency_cycles <= (
            tenant_report.p99_latency_cycles
        )
        assert tenant_report.p99_latency_cycles <= p99_slo, (
            f"tenant {tenant} p99 {tenant_report.p99_latency_cycles} "
            f"cycles blows the {p99_slo}-cycle SLO"
        )


def test_serve_soak_slo(workload, tmp_path):
    """Hundreds of tenants, mixed traffic, SLO gated from the ledger."""
    summary, report = _soak(
        workload, tmp_path,
        tenants=200, jobs=400, devices=4, mean_gap=4_000, seed=13,
    )
    assert len(report.tenants) > 150  # the draw really spans the fleet
    assert summary.jobs_admitted + summary.jobs_rejected == 400
    assert summary.jobs_admitted > 350  # admission is the exception
    _assert_slo(summary, report, SOAK_P99_SLO_CYCLES)


def test_serve_soak_overload_rejects_explicitly(workload, tmp_path):
    """Overload shows up as admission rejects, never as lost jobs."""
    summary, report = _soak(
        workload, tmp_path,
        tenants=20, jobs=120, devices=1, mean_gap=200, seed=5,
        quota=2, backlog=8,
    )
    assert summary.jobs_rejected > 0
    assert report.rejected == summary.jobs_rejected
    # the zero-loss gate still holds for everything that got in
    assert report.dropped_admitted == 0
    assert summary.jobs_admitted == summary.jobs_completed


def test_serve_slo_smoke(workload, tmp_path):
    """Small-topology variant for the CI bench-smoke job."""
    summary, report = _soak(
        workload, tmp_path,
        tenants=8, jobs=24, devices=2, mean_gap=8_000, seed=3,
    )
    assert summary.jobs_admitted == 24
    _assert_slo(summary, report, SMOKE_P99_SLO_CYCLES)
    print()  # keep the rendered report on its own lines under -s
    print(report.render())
