"""Extension bench (Section IV-E): active-region determination.

Not a published table — the paper claims Genesis covers this operation;
the bench demonstrates it: the composed pipeline reproduces the software
stage exactly and sustains ~1 base/cycle like the published pipelines.
"""

from repro.accel.active_region import accelerated_active_regions, run_active_region_partition
from repro.gatk.active_region import determine_active_regions
from repro.tables.genomic_tables import count_bases


def _run(workload):
    sw = determine_active_regions(workload.reads, workload.genome)
    hw = accelerated_active_regions(
        workload.partitions, workload.reference, workload.genome
    )
    cycles = 0
    bases = 0
    for pid, part in workload.partitions:
        if part.num_rows == 0:
            continue
        result = run_active_region_partition(part, workload.reference.lookup(pid))
        cycles += result.run.stats.cycles
        bases += count_bases(part)
    return sw, hw, cycles, bases


def test_ext_active_region(benchmark, report, small_bench_workload):
    sw, hw, cycles, bases = benchmark(_run, small_bench_workload)

    assert sw == hw
    total_regions = sum(len(regions) for regions in sw.values())
    assert total_regions > 0
    cpb = cycles / bases
    assert cpb < 2.5

    report("Extension (IV-E) - active-region determination", [
        f"regions found: {total_regions} across "
        f"{len(sw)} chromosome(s); HW == SW exactly",
        f"pipeline throughput: {cpb:.2f} cycles/base",
        "composed from library modules + one custom module "
        "(AnchorInsertions), per Section III-F",
    ])
