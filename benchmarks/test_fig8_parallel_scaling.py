"""Figure 8: parallel pipeline replication through the arbitration fabric.

Replicates the example-query pipeline N times inside one engine sharing
the memory system and measures aggregate throughput.  With a deliberately
narrow memory configuration the bandwidth knee appears at small N —
the effect that caps Genesis at 16/16/8 pipelines on the F1.
"""

from repro.eval.experiments import figure8_scaling
from repro.hw.memory import MemoryConfig


def test_figure8_pipeline_scaling(benchmark, report, small_bench_workload):
    throughput = benchmark(
        figure8_scaling,
        workload=small_bench_workload,
        pipeline_counts=(1, 2, 4, 8),
        memory_config=MemoryConfig(channels=1, access_bytes=8),
    )

    # Near-linear early scaling...
    assert throughput[2] > 1.6 * throughput[1]
    assert throughput[4] > 2.5 * throughput[1]
    # ...then saturation: efficiency at 8 pipelines drops below ~90%.
    efficiency_8 = throughput[8] / (8 * throughput[1])
    assert efficiency_8 < 0.95

    lines = [
        f"{n} pipeline(s): {bases_per_cycle:.3f} bases/cycle "
        f"(efficiency {bases_per_cycle / (n * throughput[1]):.0%})"
        for n, bases_per_cycle in sorted(throughput.items())
    ]
    lines.append("shared-memory arbitration saturates added pipelines, as in "
                 "the paper's pipeline-count limits (16x/16x/8x)")
    report("Figure 8 - parallel pipelines vs shared memory bandwidth", lines)
